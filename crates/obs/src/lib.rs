//! # unet-obs — observability for the universal-networks workspace
//!
//! The paper's whole argument is quantitative — slowdown `s`, inefficiency
//! `k = s·m/n`, routing makespans, queue lengths, pebble-op counts. This
//! crate gives those numbers a first-class home:
//!
//! * [`Recorder`] — span/counter/gauge/histogram primitives that the hot
//!   subsystems (`EmbeddingSimulator::simulate`, `packet::route`,
//!   `pebble::check`) are generic over;
//! * [`NoopRecorder`] — the default; a zero-sized type whose methods
//!   monomorphize to nothing, so uninstrumented callers pay nothing;
//! * [`InMemoryRecorder`] — aggregates counters/gauges, log-bucketed
//!   [`Histogram`]s, and a chronological span-event stream;
//! * [`trace`] — JSONL export/import of a recorded run
//!   (`unet trace` writes it, `unet report` reads it);
//! * [`report`] — human-readable summaries of a trace;
//! * [`json`] — the dependency-free JSON reader/writer underneath.
//!
//! This crate is dependency-free by design: every other crate in the
//! workspace can depend on it without cycles.

pub mod json;
pub mod recorder;
pub mod report;
pub mod trace;

pub use recorder::{Histogram, InMemoryRecorder, NoopRecorder, Recorder};
