//! Static embeddings cannot be universal cheaply — the counting contrast
//! the paper draws with \[13\] ("if only embeddings are allowed, universal
//! networks with constant slowdown have exponential size") made executable.
//!
//! An *embedding-based* simulation maps each guest processor to one host
//! processor once and for all, and realizes each guest edge as a host path
//! of length ≤ `s` (otherwise a single guest step cannot complete in `s`
//! host steps). A fixed host `M` of size `m`, degree `d`, can therefore
//! "serve" at most
//!
//! ```text
//! #guests(M, s)  ≤  m^n · (paths of length ≤ s per endpoint)^{c·n/2}
//!                ≤  m^n · (s·d^s)^{c·n/2}
//! ```
//!
//! guests, while there are `≥ n^{(c/2)·n}·2^{−O(n)}` labelled `c`-regular
//! guests. Solving gives the minimum size of an embedding-universal host:
//!
//! ```text
//! log₂ m  ≥  (c/2)·(log₂ n − s·log₂ d − log₂ s) − O(1)
//! ```
//!
//! — for constant slowdown `s`, `m = n^{Ω(c)}`, versus `m = O(n^{1+ε})`
//! with *dynamic* simulation \[14\]: the quantitative content of "dynamic
//! simulations are strictly stronger than embeddings" for universal hosts.
//! (This simple counting bound is weaker than \[13\]'s exponential bound but
//! already separates the two regimes by an arbitrary polynomial degree.)

/// `log₂` of the maximum number of distinct `c`-regular guests a fixed host
/// of size `2^log2_m` and degree `d` can serve by embeddings with dilation
/// ≤ `s`. (`log2_m` as a float because the interesting hosts are too large
/// for `u64`.)
pub fn log2_embeddable_guests(n: u64, c: u32, log2_m: f64, d: u32, s: u32) -> f64 {
    let nf = n as f64;
    let placements = nf * log2_m;
    // Each of the c·n/2 guest edges is realized by a path of length ≤ s from
    // a fixed endpoint: at most Σ_{ℓ≤s} d^ℓ ≤ s·d^s choices.
    let per_edge = (s as f64).log2() + s as f64 * (d as f64).log2();
    placements + (c as f64 / 2.0) * nf * per_edge
}

/// `log₂` of the number of labelled `c`-regular guests (leading term
/// `(c/2)·n·log₂ n`, matching the counting used in Theorem 3.1).
pub fn log2_guests(n: u64, c: u32) -> f64 {
    (c as f64 / 2.0) * n as f64 * (n as f64).log2()
}

/// Minimum host size for an *embedding*-universal network with slowdown `s`:
/// the smallest `m` with `log2_embeddable_guests ≥ log2_guests`, i.e.
/// `log₂ m ≥ (c/2)·(log₂ n − s·log₂ d − log₂ s)`. Returns `log₂ m` (may be
/// astronomically large — that is the point).
pub fn log2_min_embedding_universal_size(n: u64, c: u32, d: u32, s: u32) -> f64 {
    let per_edge = (s as f64).log2() + s as f64 * (d as f64).log2();
    ((c as f64 / 2.0) * ((n as f64).log2() - per_edge)).max(0.0)
}

/// The dynamic-simulation comparison point from \[14\]: size `n^{1+ε}` hosts
/// achieve constant slowdown. Returns `log₂ m = (1+ε)·log₂ n`.
pub fn log2_dynamic_universal_size(n: u64, epsilon: f64) -> f64 {
    (1.0 + epsilon) * (n as f64).log2()
}

/// One row of the embeddings-vs-dynamics comparison (experiment E12).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmbeddingVsDynamicRow {
    /// Guest size.
    pub n: u64,
    /// `log₂ m` needed by embedding-universal hosts at slowdown `s`.
    pub log2_m_embedding: f64,
    /// `log₂ m` needed by dynamic-universal hosts (`ε = 0.5`).
    pub log2_m_dynamic: f64,
    /// The separation factor in the exponent.
    pub exponent_ratio: f64,
}

/// Tabulate the separation across guest sizes at fixed slowdown `s`,
/// degree `d`, guest degree `c = 16` (the paper's).
pub fn embedding_vs_dynamic(ns: &[u64], d: u32, s: u32) -> Vec<EmbeddingVsDynamicRow> {
    ns.iter()
        .map(|&n| {
            let e = log2_min_embedding_universal_size(n, 16, d, s);
            let dy = log2_dynamic_universal_size(n, 0.5);
            EmbeddingVsDynamicRow {
                n,
                log2_m_embedding: e,
                log2_m_dynamic: dy,
                exponent_ratio: if dy > 0.0 { e / dy } else { f64::INFINITY },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embedding_bound_dwarfs_dynamic() {
        // At n = 2^20, constant slowdown s = 4, host degree 4:
        // embeddings need log2 m ≈ 8·(20 − 8 − 2) = 80 bits ⇒ m ≈ 2^80,
        // dynamics need ≈ 2^30.
        let e = log2_min_embedding_universal_size(1 << 20, 16, 4, 4);
        let d = log2_dynamic_universal_size(1 << 20, 0.5);
        assert!(e > 2.0 * d, "embedding {e} vs dynamic {d}");
        assert!((d - 30.0).abs() < 1e-9);
    }

    #[test]
    fn larger_slowdown_relaxes_embedding_bound() {
        let tight = log2_min_embedding_universal_size(1 << 20, 16, 4, 2);
        let loose = log2_min_embedding_universal_size(1 << 20, 16, 4, 8);
        assert!(tight > loose);
        // Once s·log d exceeds log n the bound degenerates to 0 (embeddings
        // with log-scale dilation are unconstrained by this counting).
        assert_eq!(log2_min_embedding_universal_size(1 << 10, 16, 4, 64), 0.0);
    }

    #[test]
    fn served_guests_fewer_than_existing_below_bound() {
        let (n, c, d, s) = (1u64 << 16, 16u32, 4u32, 3u32);
        let need = log2_min_embedding_universal_size(n, c, d, s);
        // A host half the required exponent serves too few guests…
        let served = log2_embeddable_guests(n, c, need / 2.0, d, s);
        assert!(served < log2_guests(n, c));
        // …while one right at the bound suffices by this counting.
        let big_served = log2_embeddable_guests(n, c, need + 1.0, d, s);
        assert!(big_served >= log2_guests(n, c));
    }

    #[test]
    fn table_monotone_in_n() {
        let rows = embedding_vs_dynamic(&[1 << 10, 1 << 16, 1 << 24], 4, 4);
        assert!(rows.windows(2).all(|w| {
            w[1].log2_m_embedding >= w[0].log2_m_embedding
                && w[1].exponent_ratio >= w[0].exponent_ratio * 0.9
        }));
        // c/2 = 8: the exponent ratio approaches 8/(1.5) as n grows.
        let last = rows.last().unwrap();
        assert!(last.exponent_ratio > 2.5, "{last:?}");
    }
}
