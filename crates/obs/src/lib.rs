//! # unet-obs — observability for the universal-networks workspace
//!
//! The paper's whole argument is quantitative — slowdown `s`, inefficiency
//! `k = s·m/n`, routing makespans, queue lengths, pebble-op counts. This
//! crate gives those numbers a first-class home:
//!
//! * [`Recorder`] — span/counter/gauge/histogram primitives that the hot
//!   subsystems (`Simulation::builder()` runs, `packet::route`,
//!   `pebble::check`) are generic over;
//! * [`NoopRecorder`] — the default; a zero-sized type whose methods
//!   monomorphize to nothing, so uninstrumented callers pay nothing;
//! * [`InMemoryRecorder`] — aggregates counters/gauges, log-bucketed
//!   [`Histogram`]s, and a chronological span-event stream;
//! * [`trace`] — JSONL export/import of a recorded run
//!   (`unet trace` writes it, `unet report` reads it);
//! * [`report`] — human-readable summaries of a trace;
//! * [`analysis`] — bounded-memory streaming congestion analysis over
//!   JSONL traces (`unet analyze`): congestion time series, top-k hot
//!   edges/nodes, queue-depth percentiles, critical-path extraction;
//! * [`metrics`] — the [`metrics::MetricsRegistry`]: one place for every
//!   counter/gauge/phase-timing a run produced, with Prometheus-style
//!   text exposition (`unet metrics`) and per-series exemplar trace ids;
//! * [`tailsample`] — the [`TailSampler`] deciding which per-request
//!   stage records ([`trace::RequestRecord`]) are worth keeping: all
//!   errors, a deterministic head sample, and the slowest tail;
//! * [`json`] — the dependency-free JSON reader/writer underneath.
//!
//! This crate is dependency-free by design: every other crate in the
//! workspace can depend on it without cycles.

pub mod analysis;
pub mod json;
pub mod metrics;
pub mod recorder;
pub mod report;
pub mod tailsample;
pub mod trace;

pub use analysis::{Analysis, TraceAnalyzer};
pub use metrics::MetricsRegistry;
pub use recorder::{
    edge_key, unpack_edge_key, Histogram, InMemoryRecorder, NoopRecorder, Recorder,
};
pub use tailsample::TailSampler;
