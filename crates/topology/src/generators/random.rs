//! Random regular graphs and expanders.
//!
//! The lower-bound proof needs two random-graph devices:
//!
//! * the **guest class** `U'` of `c`-regular graphs (with `c = 16`) from
//!   which the counting argument draws its "hard" guests — we sample them
//!   with the configuration (pairing) model, rejecting non-simple outcomes;
//! * a **4-regular `(α, β)`-expander** as half of the fixed subgraph `G₀`
//!   (Definition 3.9) — we build it as the union of two independent random
//!   Hamiltonian cycles, which is an expander with high probability, and then
//!   *certify* the expansion spectrally (see [`crate::spectral`]), so no
//!   unverified probabilistic assumption leaks into the experiments.

use crate::graph::{Graph, GraphBuilder, Node};
use rand::seq::SliceRandom;
use rand::Rng;

/// Sample a random simple `d`-regular graph on `n` vertices: configuration
/// (pairing) model followed by double-edge-switch repair of self-loops and
/// multi-edges.
///
/// Plain rejection has success probability `e^{−(d²−1)/4}` — hopeless already
/// at the paper's guest degree `c = 16` — so we instead repair defects with
/// the standard degree-preserving switch `{(u,v), (x,y)} → {(u,x), (v,y)}`,
/// which converges in `O(defects)` expected switches and yields a
/// distribution that is uniform up to `o(1)` for fixed `d` (McKay–Wormald).
///
/// # Panics
/// Panics if `n · d` is odd or `d ≥ n`.
pub fn random_regular<R: Rng>(n: usize, d: usize, rng: &mut R) -> Graph {
    assert!((n * d).is_multiple_of(2), "n·d must be even for a d-regular graph");
    assert!(d < n, "degree must be below n");
    if d == 0 {
        return GraphBuilder::new(n).build();
    }
    // Random pairing of n·d stubs into a multigraph edge list; the switch
    // walk can stall on extremely dense instances (d close to n−1 leaves it
    // almost no valid switches), so restart with fresh pairings.
    let mut stubs: Vec<Node> = (0..n as Node).flat_map(|v| std::iter::repeat_n(v, d)).collect();
    for attempt in 0..16 {
        stubs.shuffle(rng);
        let mut edges: Vec<(Node, Node)> = stubs
            .chunks(2)
            .map(|p| if p[0] < p[1] { (p[0], p[1]) } else { (p[1], p[0]) })
            .collect();
        if !repair_to_simple(&mut edges, rng) {
            assert!(attempt < 15, "switch repair failed to converge for n = {n}, d = {d}");
            continue;
        }
        let mut b = GraphBuilder::new(n);
        for &(u, v) in &edges {
            b.add_edge(u, v);
        }
        let g = b.build();
        debug_assert_eq!(g.is_regular(), Some(d));
        return g;
    }
    unreachable!()
}

/// Remove self-loops and duplicate edges from a multigraph edge list by
/// random double-edge switches, preserving the degree sequence. Returns
/// whether the walk converged within its budget.
fn repair_to_simple<R: Rng>(edges: &mut [(Node, Node)], rng: &mut R) -> bool {
    repair_with_forbidden(edges, |_, _| false, rng)
}

/// Like [`repair_to_simple`] but additionally switches away any edge present
/// in `g0` (used to sample residual graphs edge-disjoint from `G₀`).
fn repair_to_simple_avoiding<R: Rng>(edges: &mut [(Node, Node)], g0: &Graph, rng: &mut R) -> bool {
    repair_with_forbidden(edges, |u, v| g0.has_edge(u, v), rng)
}

fn repair_with_forbidden<R, F>(edges: &mut [(Node, Node)], forbidden: F, rng: &mut R) -> bool
where
    R: Rng,
    F: Fn(Node, Node) -> bool,
{
    use crate::util::FxHashMap;
    let canon = |u: Node, v: Node| if u < v { (u, v) } else { (v, u) };
    // Multiplicity map and the list of defective edge indices.
    let mut mult: FxHashMap<(Node, Node), u32> = FxHashMap::default();
    for &(u, v) in edges.iter() {
        *mult.entry(canon(u, v)).or_insert(0) += 1;
    }
    let is_defect = |(u, v): (Node, Node), mult: &FxHashMap<(Node, Node), u32>| {
        u == v || mult[&canon(u, v)] > 1 || forbidden(u, v)
    };
    let mut defects: Vec<usize> =
        (0..edges.len()).filter(|&i| is_defect(edges[i], &mult)).collect();
    let mut guard = 0usize;
    let budget = 2000 * edges.len().max(1);
    while let Some(&i) = defects.last() {
        guard += 1;
        if guard >= budget {
            return false;
        }
        if !is_defect(edges[i], &mult) {
            defects.pop();
            continue;
        }
        // Random partner edge j, random orientation of the switch.
        let j = rng.gen_range(0..edges.len());
        if j == i {
            continue;
        }
        let (u, v) = edges[i];
        let (mut x, mut y) = edges[j];
        if rng.gen::<bool>() {
            std::mem::swap(&mut x, &mut y);
        }
        // Proposed replacement: (u, x) and (v, y).
        if u == x || v == y {
            continue;
        }
        let e1 = canon(u, x);
        let e2 = canon(v, y);
        let new_ok = mult.get(&e1).copied().unwrap_or(0) == 0
            && mult.get(&e2).copied().unwrap_or(0) == 0
            && e1 != e2
            && !forbidden(e1.0, e1.1)
            && !forbidden(e2.0, e2.1);
        if !new_ok {
            continue;
        }
        // Apply: decrement old multiplicities, set new edges.
        for old in [canon(u, v), canon(x, y)] {
            let c = mult.get_mut(&old).expect("edge in map");
            *c -= 1;
        }
        *mult.entry(e1).or_insert(0) += 1;
        *mult.entry(e2).or_insert(0) += 1;
        edges[i] = e1;
        edges[j] = e2;
        // j might have been a defect that is now fixed, or i may remain a
        // defect (handled on the next loop pass by the freshness check).
        if is_defect(edges[j], &mult) {
            defects.push(j);
        }
    }
    true
}

/// Union of `k` independent uniformly random Hamiltonian cycles on `n`
/// vertices: a `2k`-regular (multi-)graph which we reject-and-retry into a
/// simple graph. For `k = 2` this is the standard explicit-free construction
/// of a 4-regular expander (w.h.p.).
pub fn random_hamiltonian_union<R: Rng>(n: usize, k: usize, rng: &mut R) -> Graph {
    assert!(n > 2 * k || (n >= 3 && k == 1), "n too small for {k} disjoint cycles");
    let max_tries = 10_000;
    'retry: for _ in 0..max_tries {
        let mut b = GraphBuilder::new(n);
        let mut seen = crate::util::FxHashSet::default();
        for _ in 0..k {
            let mut perm: Vec<Node> = (0..n as Node).collect();
            perm.shuffle(rng);
            for i in 0..n {
                let u = perm[i];
                let v = perm[(i + 1) % n];
                let key = if u < v { (u, v) } else { (v, u) };
                if !seen.insert(key) {
                    continue 'retry;
                }
                b.add_edge(u, v);
            }
        }
        return b.build();
    }
    panic!("failed to sample {k} edge-disjoint Hamiltonian cycles on {n} vertices");
}

/// The paper's guest-class sampler: a random `c`-regular graph *containing a
/// fixed subgraph* `g0`, i.e. a uniform element of `U[G₀]` in the style of
/// the counting argument. The residual `G \ G₀` is sampled as a random
/// `(c − deg₀)`-regular graph avoiding `g0`'s edges.
///
/// `g0` must be regular and `c` must exceed its degree by an even amount
/// (use [`random_supergraph`] for irregular `g0`).
pub fn random_regular_containing<R: Rng>(g0: &Graph, c: usize, rng: &mut R) -> Graph {
    let d0 = g0.is_regular().expect("G0 must be regular for this sampler; use random_supergraph");
    assert!(c >= d0 && (c - d0).is_multiple_of(2), "need c ≥ deg(G0) with even residual degree");
    random_supergraph(g0, c, rng)
}

/// Sample a random simple `c`-regular supergraph of an arbitrary `g0` with
/// `deg(g0) ≤ c`: the residual gets the degree sequence
/// `c − deg_{g0}(v)` (pairing model + switch repair avoiding `g0`'s edges).
///
/// # Panics
/// Panics if some vertex of `g0` already exceeds degree `c` or the residual
/// stub count is odd.
pub fn random_supergraph<R: Rng>(g0: &Graph, c: usize, rng: &mut R) -> Graph {
    let n = g0.n();
    let mut stubs: Vec<Node> = Vec::new();
    for v in 0..n as Node {
        let d0 = g0.degree(v);
        assert!(d0 <= c, "vertex {v} has degree {d0} > c = {c}");
        stubs.extend(std::iter::repeat_n(v, c - d0));
    }
    assert!(stubs.len().is_multiple_of(2), "residual degree sum must be even");
    if stubs.is_empty() {
        return g0.clone();
    }
    // Dense instances (residual degree close to the number of available
    // non-g0 partners) can stall one switch-repair walk; restart with a
    // fresh pairing a few times before giving up.
    for attempt in 0..8 {
        stubs.shuffle(rng);
        let mut edges: Vec<(Node, Node)> = stubs
            .chunks(2)
            .map(|p| if p[0] < p[1] { (p[0], p[1]) } else { (p[1], p[0]) })
            .collect();
        if !repair_to_simple_avoiding(&mut edges, g0, rng) {
            assert!(attempt < 7, "residual degree sequence appears infeasible for this g0/c");
            continue;
        }
        let mut b = GraphBuilder::new(n);
        for &(u, v) in &edges {
            b.add_edge(u, v);
        }
        let resid = b.build();
        debug_assert!((0..n as Node).all(|v| resid.degree(v) == c - g0.degree(v)));
        return resid.union(g0);
    }
    unreachable!()
}

/// Explicit Margulis-style expander on `Z_N × Z_N` (n = N² vertices),
/// degree ≤ 8: each `(x, y)` connects to `(x ± y, y)`, `(x ± y + 1, y)`... —
/// we use the Gabber–Galil variant: neighbours `(x + y, y)`, `(x + y + 1, y)`,
/// `(x, y + x)`, `(x, y + x + 1)` and their inverses, all mod `N`.
/// Deterministic (no RNG), constant degree, provably expanding.
pub fn margulis_expander(side: usize) -> Graph {
    let n = side * side;
    let idx = |x: usize, y: usize| (x * side + y) as Node;
    let mut b = GraphBuilder::new(n);
    for x in 0..side {
        for y in 0..side {
            let v = idx(x, y);
            let targets = [
                idx((x + y) % side, y),
                idx((x + y + 1) % side, y),
                idx(x, (y + x) % side),
                idx(x, (y + x + 1) % side),
            ];
            for t in targets {
                if t != v {
                    b.add_edge(v, t);
                }
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::is_connected;
    use crate::util::seeded_rng;

    #[test]
    fn random_regular_is_regular_and_simple() {
        let mut rng = seeded_rng(7);
        for &(n, d) in &[(10, 3), (20, 4), (64, 16), (101, 4)] {
            let g = random_regular(n, d, &mut rng);
            assert_eq!(g.is_regular(), Some(d), "n={n} d={d}");
            assert_eq!(g.n(), n);
        }
    }

    #[test]
    fn random_regular_zero_degree() {
        let mut rng = seeded_rng(1);
        let g = random_regular(5, 0, &mut rng);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn random_regular_odd_product_rejected() {
        let mut rng = seeded_rng(1);
        random_regular(5, 3, &mut rng);
    }

    #[test]
    fn hamiltonian_union_is_regular() {
        let mut rng = seeded_rng(11);
        let g = random_hamiltonian_union(50, 2, &mut rng);
        assert_eq!(g.is_regular(), Some(4));
        assert!(is_connected(&g));
    }

    #[test]
    fn hamiltonian_union_single_cycle() {
        let mut rng = seeded_rng(3);
        let g = random_hamiltonian_union(9, 1, &mut rng);
        assert_eq!(g.is_regular(), Some(2));
        assert!(is_connected(&g));
        assert_eq!(g.num_edges(), 9);
    }

    #[test]
    fn containing_sampler_preserves_g0() {
        let mut rng = seeded_rng(5);
        let g0 = crate::generators::mesh::torus(6, 6); // 4-regular
        let g = random_regular_containing(&g0, 8, &mut rng);
        assert_eq!(g.is_regular(), Some(8));
        assert!(g.contains_subgraph(&g0));
        // Residual is exactly 4-regular and disjoint from g0.
        let resid = g.difference(&g0);
        assert_eq!(resid.is_regular(), Some(4));
        for (u, v) in resid.edges() {
            assert!(!g0.has_edge(u, v));
        }
    }

    #[test]
    fn supergraph_of_irregular_g0() {
        // g0 = path(6) (degrees 1,2,2,2,2,1); c = 4 supergraph.
        let g0 = crate::generators::classic::path(6);
        let g = random_supergraph(&g0, 4, &mut seeded_rng(9));
        assert_eq!(g.is_regular(), Some(4));
        assert!(g.contains_subgraph(&g0));
        for v in 0..6u32 {
            assert_eq!(g.difference(&g0).degree(v), 4 - g0.degree(v));
        }
    }

    #[test]
    fn containing_sampler_zero_residual() {
        let mut rng = seeded_rng(5);
        let g0 = crate::generators::mesh::torus(4, 4);
        let g = random_regular_containing(&g0, 4, &mut rng);
        assert_eq!(g, g0);
    }

    #[test]
    fn margulis_constant_degree_connected() {
        for side in [3usize, 5, 8, 13] {
            let g = margulis_expander(side);
            assert_eq!(g.n(), side * side);
            assert!(g.max_degree() <= 8, "side={side} deg={}", g.max_degree());
            assert!(is_connected(&g), "side={side}");
        }
    }

    #[test]
    fn samplers_deterministic_under_seed() {
        let a = random_regular(30, 4, &mut seeded_rng(99));
        let b = random_regular(30, 4, &mut seeded_rng(99));
        assert_eq!(a, b);
    }
}
