//! Structural graph analysis: BFS, diameter, connectivity, and the spreading
//! function of \[15\] (the size of `t`-neighbourhoods, which governs how far
//! information can travel in `t` steps of a network computation).

use crate::graph::{Graph, Node};
use std::collections::VecDeque;

/// BFS distances from `src`; unreachable vertices get `u32::MAX`.
pub fn bfs_distances(g: &Graph, src: Node) -> Vec<u32> {
    let mut dist = vec![u32::MAX; g.n()];
    let mut queue = VecDeque::new();
    dist[src as usize] = 0;
    queue.push_back(src);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v as usize];
        for &w in g.neighbors(v) {
            if dist[w as usize] == u32::MAX {
                dist[w as usize] = dv + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// Eccentricity of `src` (max finite BFS distance). `None` if the graph is
/// disconnected from `src`.
pub fn eccentricity(g: &Graph, src: Node) -> Option<u32> {
    let dist = bfs_distances(g, src);
    let mut max = 0;
    for &d in &dist {
        if d == u32::MAX {
            return None;
        }
        max = max.max(d);
    }
    Some(max)
}

/// Exact diameter by all-pairs BFS — `O(n·(n+m))`, fine for the experiment
/// sizes (n ≤ ~10⁴). Panics on empty, returns `u32::MAX` when disconnected.
pub fn diameter_exact(g: &Graph) -> u32 {
    assert!(g.n() > 0);
    let mut best = 0;
    for v in 0..g.n() as Node {
        match eccentricity(g, v) {
            Some(e) => best = best.max(e),
            None => return u32::MAX,
        }
    }
    best
}

/// Double-sweep lower bound on the diameter: BFS from `src`, then BFS from
/// the farthest vertex found. Exact on trees; a good lower bound in general
/// and `O(n + m)`.
pub fn diameter_double_sweep(g: &Graph, src: Node) -> u32 {
    let d1 = bfs_distances(g, src);
    let far = d1
        .iter()
        .enumerate()
        .filter(|&(_, &d)| d != u32::MAX)
        .max_by_key(|&(_, &d)| d)
        .map(|(v, _)| v as Node)
        .unwrap_or(src);
    let d2 = bfs_distances(g, far);
    d2.iter().copied().filter(|&d| d != u32::MAX).max().unwrap_or(0)
}

/// Whether the graph is connected (vacuously true for n ≤ 1).
pub fn is_connected(g: &Graph) -> bool {
    if g.n() <= 1 {
        return true;
    }
    bfs_distances(g, 0).iter().all(|&d| d != u32::MAX)
}

/// Size of the ball of radius `t` around `v` (the `t`-neighbourhood,
/// including `v`).
pub fn ball_size(g: &Graph, v: Node, t: u32) -> usize {
    bfs_distances(g, v).iter().filter(|&&d| d <= t).count()
}

/// The spreading function of \[15\] evaluated at `t`: the *maximum* over all
/// vertices of the `t`-neighbourhood size. Networks with polynomially bounded
/// spreading admit smaller universal hosts (Meyer auf der Heide & Wanka,
/// STACS'89) — we expose the measurement so that claim can be explored.
///
/// `sample` limits the number of source vertices scanned (deterministic
/// stride) to keep this `O(sample · (n + m))`.
pub fn spreading_function(g: &Graph, t: u32, sample: usize) -> usize {
    let n = g.n();
    if n == 0 {
        return 0;
    }
    let stride = (n / sample.max(1)).max(1);
    (0..n).step_by(stride).map(|v| ball_size(g, v as Node, t)).max().unwrap_or(0)
}

/// Connected components; returns a component id per vertex and the count.
pub fn components(g: &Graph) -> (Vec<u32>, usize) {
    let mut comp = vec![u32::MAX; g.n()];
    let mut next = 0u32;
    let mut queue = VecDeque::new();
    for start in 0..g.n() as Node {
        if comp[start as usize] != u32::MAX {
            continue;
        }
        comp[start as usize] = next;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            for &w in g.neighbors(v) {
                if comp[w as usize] == u32::MAX {
                    comp[w as usize] = next;
                    queue.push_back(w);
                }
            }
        }
        next += 1;
    }
    (comp, next as usize)
}

/// Brute-force vertex expansion: over all sets `A` with `|A| ≤ α·n`, the
/// minimum of `|N(A)| / |A|` where `N(A)` is the set of neighbours of `A`
/// (following the paper's Definition 3.8 of an `(α, β)`-expander; `N(A)` may
/// intersect `A`). Exponential — only for `n ≤ ~20` (tests and tiny
/// certification runs).
pub fn vertex_expansion_bruteforce(g: &Graph, alpha: f64) -> f64 {
    let n = g.n();
    assert!(n <= 24, "brute-force expansion is exponential; n = {n} too large");
    let limit = (alpha * n as f64).floor() as u32;
    let mut best = f64::INFINITY;
    for mask in 1u64..(1u64 << n) {
        let size = mask.count_ones();
        if size == 0 || size > limit {
            continue;
        }
        let mut nb = 0u64;
        for v in 0..n {
            if mask & (1 << v) != 0 {
                for &w in g.neighbors(v as Node) {
                    nb |= 1 << w;
                }
            }
        }
        let ratio = nb.count_ones() as f64 / size as f64;
        if ratio < best {
            best = ratio;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::classic::{binary_tree, complete, path, ring};
    use crate::generators::mesh::{mesh, torus};

    #[test]
    fn bfs_on_path() {
        let g = path(5);
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs_distances(&g, 2), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn diameters() {
        assert_eq!(diameter_exact(&path(5)), 4);
        assert_eq!(diameter_exact(&ring(6)), 3);
        assert_eq!(diameter_exact(&mesh(4, 4)), 6);
        assert_eq!(diameter_exact(&torus(4, 4)), 4);
        assert_eq!(diameter_exact(&complete(7)), 1);
    }

    #[test]
    fn double_sweep_exact_on_trees() {
        let g = binary_tree(4);
        assert_eq!(diameter_double_sweep(&g, 0), diameter_exact(&g));
    }

    #[test]
    fn disconnected_detection() {
        let mut b = crate::graph::GraphBuilder::new(4);
        b.add_edge(0, 1).add_edge(2, 3);
        let g = b.build();
        assert!(!is_connected(&g));
        assert_eq!(diameter_exact(&g), u32::MAX);
        assert_eq!(eccentricity(&g, 0), None);
        let (comp, count) = components(&g);
        assert_eq!(count, 2);
        assert_eq!(comp[0], comp[1]);
        assert_ne!(comp[0], comp[2]);
    }

    #[test]
    fn ball_sizes_on_torus() {
        let g = torus(5, 5);
        assert_eq!(ball_size(&g, 0, 0), 1);
        assert_eq!(ball_size(&g, 0, 1), 5);
        // Radius-2 ball on the torus: 1 + 4 + 8 = 13.
        assert_eq!(ball_size(&g, 0, 2), 13);
        assert_eq!(ball_size(&g, 0, 100), 25);
    }

    #[test]
    fn spreading_function_mesh_quadratic() {
        // Mesh spreading is Θ(t²) — "polynomial spreading" per [15].
        let g = mesh(20, 20);
        let s2 = spreading_function(&g, 2, 400);
        let s4 = spreading_function(&g, 4, 400);
        assert_eq!(s2, 13);
        assert_eq!(s4, 41);
    }

    #[test]
    fn expansion_of_complete_graph() {
        let g = complete(8);
        // Any A: N(A) = everything, ratio ≥ 8 / |A| ≥ 8 / 4.
        let beta = vertex_expansion_bruteforce(&g, 0.5);
        assert!(beta >= 2.0 - 1e-9, "beta = {beta}");
    }

    #[test]
    fn expansion_of_ring_is_weak() {
        let g = ring(16);
        // At α = 0.5 the alternating set {0,2,…,14} has N(A) = the odd
        // vertices, so |N(A)|/|A| = 1 exactly: rings are not (½, β)-expanders
        // for any β > 1.
        let beta = vertex_expansion_bruteforce(&g, 0.5);
        assert!((beta - 1.0).abs() < 1e-9, "beta = {beta}");
        // At α = 0.25 the worst set is a run of alternating vertices, e.g.
        // {0,2,4,6} with N(A) = {1,3,5,7,15} ⇒ β = 5/4.
        let beta_small = vertex_expansion_bruteforce(&g, 0.25);
        assert!((beta_small - 1.25).abs() < 1e-9, "beta = {beta_small}");
    }
}
