//! Degraded-mode universal simulation: the Theorem 2.1 engine surviving
//! crash-stop host faults.
//!
//! The healthy [`Simulation`](unet_core::Simulation) engine fixes a
//! static embedding and alternates communication and computation phases.
//! This simulator runs the same phases against a [`FaultyView`], applying
//! fault events at guest-step boundaries:
//!
//! * **Re-embedding** — when a host crashes, its guest processors remap to
//!   the nearest live host (BFS over the base graph, deterministic
//!   tie-break), so every guest always has a live home.
//! * **Pebble replay** — a crashed host's custody is gone, so before a guest
//!   step runs, every required predecessor pebble `(u, t−1)` is either
//!   *shipped* from the nearest surviving holder (the paper's `Q_S(i,t)`
//!   representative machinery makes "who still holds a copy" precise) or,
//!   when no live holder is reachable, *regenerated* recursively from its
//!   own predecessors — bottoming out at the universally-held level-0
//!   pebbles. Pebbles are never destroyed in the game, only custody at dead
//!   hosts becomes unusable; regeneration is therefore always possible, so
//!   the simulation survives any fault pattern that leaves at least one
//!   host alive.
//!
//! The emitted protocol is an ordinary pebble protocol over the **full**
//! host graph (dead hosts simply go idle forever), so `unet_pebble::check`
//! certifies the degraded run end-to-end and the final configurations can
//! be compared bit-for-bit against direct guest execution.

use crate::plan::FaultPlan;
use crate::route::route_faulty_recorded;
use crate::view::{AppliedFault, FaultyView};
use rand::Rng;
use unet_core::embedding::Embedding;
use unet_core::guest::GuestComputation;
use unet_core::simulate::{advance_states, replay_plan, SimulationRun};
use unet_obs::trace::{FaultOp, FaultRecord};
use unet_obs::{NoopRecorder, Recorder};
use unet_pebble::protocol::{Op, Pebble, ProtocolBuilder};
use unet_routing::packet::{Discipline, PathSelector, ShortestPath};
use unet_routing::plan::{extract_plan, PlanCache, RoutePlan};
use unet_topology::par::default_threads;
use unet_topology::util::{seeded_rng, FxHashSet};
use unet_topology::{Graph, Node};

/// Why a degraded simulation could not continue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradedError {
    /// Every host is dead at the given boundary — nobody left to simulate.
    AllHostsDead {
        /// The boundary at which the last host died.
        at: u32,
    },
}

impl std::fmt::Display for DegradedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DegradedError::AllHostsDead { at } => {
                write!(f, "all hosts dead at boundary {at}: nothing left to simulate on")
            }
        }
    }
}

impl std::error::Error for DegradedError {}

/// Result of a degraded run: the ordinary [`SimulationRun`] plus the fault
/// story around it.
#[derive(Debug, Clone)]
pub struct DegradedRun {
    /// The certified-protocol run (check it, verify it, measure it — same
    /// as a healthy run).
    pub run: SimulationRun,
    /// Every fault event that fired, in application order, ready for
    /// `unet-trace/1` export.
    pub fault_log: Vec<FaultRecord>,
    /// `(host, protocol step)` per crashed host: from that step on the host
    /// emits only [`Op::Idle`].
    pub dead_at: Vec<(Node, u32)>,
    /// Guests re-embedded after their host crashed.
    pub remapped: u64,
    /// Pebbles regenerated from predecessors (no live holder reachable).
    pub replayed: u64,
    /// Pebble-carrying packets delivered by fault-aware routing.
    pub delivered: u64,
    /// Routing requests dropped (partitioned or holder lost) and satisfied
    /// by regeneration instead.
    pub dropped: u64,
    /// Packets rerouted after a canonical path died.
    pub retried: u64,
    /// Hosts still alive at the end (`m'`).
    pub m_surviving: usize,
}

impl DegradedRun {
    /// Inefficiency measured against the *surviving* size:
    /// `k' = s · m' / n` — the quantity experiment E16 compares against the
    /// Theorem 3.1 bound on `m'`.
    pub fn surviving_inefficiency(&self) -> f64 {
        self.run.slowdown() * self.m_surviving as f64 / self.run.protocol.guest_n as f64
    }
}

/// Execution knobs for [`DegradedSimulator::simulate_tuned`].
#[derive(Debug, Clone, Copy)]
pub struct DegradedTuning {
    /// Worker threads for the host-side state computation.
    pub threads: usize,
    /// Whether to cache the route plan across steps (invalidated whenever
    /// the [`FaultyView`] epoch moves, and re-validated against the exact
    /// pair set because holder drift can reshape the problem even between
    /// faults).
    pub cache: bool,
}

impl Default for DegradedTuning {
    fn default() -> Self {
        DegradedTuning { threads: default_threads(), cache: true }
    }
}

/// How the fault-aware router gets its randomness (mirrors the core
/// engine's modes: `Threaded` reproduces the legacy byte stream; `PerPhase`
/// makes schedules step-invariant so the cache is pure memoization).
enum DegradedRouteRng {
    Threaded,
    PerPhase(u64),
}

/// Per-run execution mode (legacy vs tuned), internal.
struct DegradedMode {
    threads: usize,
    cache: bool,
    route_rng: DegradedRouteRng,
}

/// One cached communication phase: the pair set it is valid for, the
/// replayable rounds (over routed-packet indices), and the bookkeeping the
/// routing pass would have produced.
struct CachedDegradedComm {
    pairs: Vec<(Node, Node)>,
    plan: RoutePlan,
    /// Routed packet index → pair index (payload lookup at replay time).
    routed: Vec<usize>,
    delivered: u64,
    retried: u64,
    dropped_pairs: Vec<usize>,
}

/// The degraded-mode simulator.
///
/// `selector` is the canonical path strategy of the healthy host (e.g.
/// greedy bit-fixing on a butterfly); `None` routes by BFS over the live
/// view directly. Fault times in `plan` are guest-step boundaries.
pub struct DegradedSimulator<S: PathSelector = ShortestPath> {
    /// Initial guest→host placement (re-embedded as hosts die).
    pub embedding: Embedding,
    /// The fault script.
    pub plan: FaultPlan,
    /// Canonical path selector to try before the BFS fallback.
    pub selector: Option<S>,
}

impl<S: PathSelector> DegradedSimulator<S> {
    /// Simulate `steps` guest steps of `comp` on `host` under the plan.
    ///
    /// # Panics
    /// Panics if sizes disagree or the plan targets elements outside `host`.
    pub fn simulate<R: Rng>(
        &self,
        comp: &GuestComputation,
        host: &Graph,
        steps: u32,
        rng: &mut R,
    ) -> Result<DegradedRun, DegradedError> {
        self.simulate_recorded(comp, host, steps, rng, &mut NoopRecorder)
    }

    /// [`DegradedSimulator::simulate`] with instrumentation: the healthy
    /// engine's `sim.comm` / `sim.compute` spans and `sim.*` counters, plus
    /// the `faults.route.*` counters from fault-aware routing and
    /// `faults.replayed` / `faults.remapped` totals.
    ///
    /// Runs the legacy execution mode — sequential, uncached, router RNG
    /// threaded through every phase — byte-identical to the historical
    /// engine. Use [`DegradedSimulator::simulate_tuned`] for the cached /
    /// parallel engine.
    pub fn simulate_recorded<R: Rng, REC: Recorder>(
        &self,
        comp: &GuestComputation,
        host: &Graph,
        steps: u32,
        rng: &mut R,
        rec: &mut REC,
    ) -> Result<DegradedRun, DegradedError> {
        let mode = DegradedMode { threads: 1, cache: false, route_rng: DegradedRouteRng::Threaded };
        self.run_degraded(comp, host, steps, &mode, rng, rec)
    }

    /// Degraded simulation with the tuned execution engine: route-plan
    /// caching (invalidated on every [`FaultyView`] epoch change, so fresh
    /// faults always reroute) and a parallel state-computation phase.
    ///
    /// Output is **bit-for-bit identical** across all tunings for a given
    /// seed: like `Simulation::builder()`, this draws one route seed from
    /// `rng` up front and reseeds the router each phase, so cached and
    /// uncached runs see the same schedules. (It therefore does *not*
    /// reproduce `simulate`'s byte stream for randomized selectors.)
    pub fn simulate_tuned<R: Rng, REC: Recorder>(
        &self,
        comp: &GuestComputation,
        host: &Graph,
        steps: u32,
        tuning: &DegradedTuning,
        rng: &mut R,
        rec: &mut REC,
    ) -> Result<DegradedRun, DegradedError> {
        let route_seed: u64 = rng.gen();
        let mode = DegradedMode {
            threads: tuning.threads.max(1),
            cache: tuning.cache,
            route_rng: DegradedRouteRng::PerPhase(route_seed),
        };
        self.run_degraded(comp, host, steps, &mode, rng, rec)
    }

    fn run_degraded<R: Rng, REC: Recorder>(
        &self,
        comp: &GuestComputation,
        host: &Graph,
        steps: u32,
        mode: &DegradedMode,
        rng: &mut R,
        rec: &mut REC,
    ) -> Result<DegradedRun, DegradedError> {
        let n = comp.n();
        let m = host.n();
        assert_eq!(self.embedding.n(), n, "embedding covers every guest");
        assert_eq!(self.embedding.m, m, "embedding targets this host");
        assert!(steps >= 1, "simulate at least one guest step");

        let mut view = FaultyView::new(host, &self.plan);
        let mut f: Vec<Node> = self.embedding.f.clone();
        // held[q]: pebble keys at host q (t ≥ 1; level 0 is universal).
        // Cleared on crash: the checker's custody is monotone, but a dead
        // host can never *use* custody again, so forgetting it is the
        // conservative model of crash-stop.
        let mut held: Vec<FxHashSet<u64>> = vec![FxHashSet::default(); m];
        let mut builder = ProtocolBuilder::new(n, steps, m);

        let mut st = Stats::default();
        let mut fault_log: Vec<FaultRecord> = Vec::new();
        let mut dead_at: Vec<(Node, u32)> = Vec::new();
        let mut cache: PlanCache<CachedDegradedComm> = PlanCache::new();

        let mut prev_states: Vec<u64> = comp.init.clone();

        for gt in 1..=steps {
            // ---- Fault boundary ------------------------------------------
            for a in view.advance_to(gt) {
                fault_log.push(fault_record(&a));
                if let AppliedFault::NodeDown { node, .. } = a {
                    held[node as usize].clear();
                    dead_at.push((node, st.total_steps));
                }
            }
            if view.m_surviving() == 0 {
                return Err(DegradedError::AllHostsDead { at: gt });
            }
            // ---- Re-embedding --------------------------------------------
            for (v, home) in f.iter_mut().enumerate() {
                if !view.is_node_up(*home) {
                    let target = nearest_live(&view, *home);
                    *home = target;
                    st.remapped += 1;
                    fault_log.push(FaultRecord {
                        at: gt as u64,
                        op: FaultOp::Remap,
                        kind: "guest".into(),
                        subject: format!("guest:{v}->host:{target}"),
                    });
                }
            }
            // ---- Communication + replay phase ----------------------------
            rec.span_start("sim.comm");
            if gt > 1 {
                // Every pebble a guest's generation will need, not yet held
                // by its (possibly new) home host.
                let mut seen: FxHashSet<(Node, u64)> = FxHashSet::default();
                let mut pairs: Vec<(Node, Node)> = Vec::new();
                let mut payloads: Vec<Pebble> = Vec::new();
                let mut replay: Vec<(Node, Pebble)> = Vec::new();
                for v in 0..n as Node {
                    let h = f[v as usize];
                    for p in closed_preds(comp, v, gt) {
                        if !held[h as usize].contains(&p.key()) && seen.insert((h, p.key())) {
                            match nearest_holder(&view, &held, h, p) {
                                Some(src) => {
                                    pairs.push((src, h));
                                    payloads.push(p);
                                }
                                None => replay.push((h, p)),
                            }
                        }
                    }
                }
                rec.histogram("sim.routing_problem_size", pairs.len() as u64);
                if !pairs.is_empty() {
                    // The cached schedule is valid only if no fault fired
                    // since it was computed (same view epoch) AND the
                    // induced problem is literally the same pairs — holder
                    // custody drifts as pebbles ship, so the epoch alone is
                    // not sufficient in degraded mode.
                    let epoch = view.epoch();
                    let hit = mode.cache && cache.lookup(epoch, |c| c.pairs == pairs).is_some();
                    if hit {
                        let c = cache.peek().expect("hit implies entry");
                        st.delivered += c.delivered;
                        st.retried += c.retried;
                        let routed_payloads: Vec<Pebble> =
                            c.routed.iter().map(|&i| payloads[i]).collect();
                        let emitted = replay_plan(&mut builder, &c.plan, &routed_payloads);
                        st.comm_steps += emitted;
                        st.total_steps += emitted as u32;
                        for round in &c.plan.rounds {
                            for &(_, to, pid) in round {
                                held[to as usize].insert(routed_payloads[pid as usize].key());
                            }
                        }
                        for &i in &c.dropped_pairs {
                            st.dropped += 1;
                            replay.push((pairs[i].1, payloads[i]));
                        }
                    } else {
                        let fo = match mode.route_rng {
                            DegradedRouteRng::Threaded => route_faulty_recorded(
                                &view,
                                &pairs,
                                self.selector.as_ref(),
                                Discipline::FarthestFirst,
                                rng,
                                &mut *rec,
                            ),
                            DegradedRouteRng::PerPhase(seed) => route_faulty_recorded(
                                &view,
                                &pairs,
                                self.selector.as_ref(),
                                Discipline::FarthestFirst,
                                &mut seeded_rng(seed),
                                &mut *rec,
                            ),
                        };
                        st.delivered += fo.delivered;
                        st.retried += fo.retried;
                        let mut plan = RoutePlan::default();
                        if let Some(out) = &fo.outcome {
                            let routed_payloads: Vec<Pebble> =
                                fo.routed.iter().map(|&i| payloads[i]).collect();
                            plan = extract_plan(&out.transfers);
                            let emitted = replay_plan(&mut builder, &plan, &routed_payloads);
                            st.comm_steps += emitted;
                            st.total_steps += emitted as u32;
                            // Note: self-transfers (dropped from the plan)
                            // never reach a node that doesn't already hold
                            // the pebble — the source holds it and every
                            // later stop was reached by a real hop — so
                            // inserting along plan rounds matches the
                            // historical per-transfer insertion exactly.
                            for t in &out.transfers {
                                held[t.to as usize]
                                    .insert(routed_payloads[t.packet_id as usize].key());
                            }
                        }
                        // A planned source can still fail to route (defensive —
                        // planning and routing see the same static view, so this
                        // is unreachable today): regenerate instead.
                        for &i in &fo.dropped_pairs {
                            st.dropped += 1;
                            replay.push((pairs[i].1, payloads[i]));
                        }
                        if mode.cache {
                            cache.store(
                                epoch,
                                CachedDegradedComm {
                                    pairs: pairs.clone(),
                                    plan,
                                    routed: fo.routed.clone(),
                                    delivered: fo.delivered,
                                    retried: fo.retried,
                                    dropped_pairs: fo.dropped_pairs.clone(),
                                },
                            );
                        }
                    }
                }
                for (h, p) in replay {
                    ensure_pebble(comp, &view, &mut held, &mut builder, h, p, &mut st);
                }
            } else {
                rec.histogram("sim.routing_problem_size", 0);
            }
            rec.span_end("sim.comm");
            // ---- Computation phase ---------------------------------------
            rec.span_start("sim.compute");
            let mut guests_by_host: Vec<Vec<Node>> = vec![Vec::new(); m];
            for (v, &q) in f.iter().enumerate() {
                guests_by_host[q as usize].push(v as Node);
            }
            let load = guests_by_host.iter().map(Vec::len).max().unwrap_or(0);
            for round in 0..load {
                for (q, guests) in guests_by_host.iter().enumerate() {
                    if let Some(&v) = guests.get(round) {
                        let p = Pebble::new(v, gt);
                        builder.set_op(q as Node, Op::Generate(p));
                        held[q].insert(p.key());
                    }
                }
                builder.end_step();
                st.compute_steps += 1;
                st.total_steps += 1;
            }
            // ---- Host-side state computation -----------------------------
            prev_states = advance_states(comp, &prev_states, mode.threads);
            rec.span_end("sim.compute");
        }

        rec.counter("sim.guest_steps", steps as u64);
        rec.counter("sim.comm_steps", st.comm_steps as u64);
        rec.counter("sim.compute_steps", st.compute_steps as u64);
        rec.counter("sim.cache.hits", cache.hits());
        rec.counter("sim.cache.misses", cache.misses());
        rec.gauge("sim.par.threads", mode.threads as f64);
        rec.counter("faults.remapped", st.remapped);
        rec.counter("faults.replayed", st.replayed);

        Ok(DegradedRun {
            run: SimulationRun {
                protocol: builder.finish(),
                final_states: prev_states,
                comm_steps: st.comm_steps,
                compute_steps: st.compute_steps,
            },
            fault_log,
            dead_at,
            remapped: st.remapped,
            replayed: st.replayed,
            delivered: st.delivered,
            dropped: st.dropped,
            retried: st.retried,
            m_surviving: view.m_surviving(),
        })
    }
}

/// Running totals threaded through the phases.
#[derive(Default)]
struct Stats {
    comm_steps: usize,
    compute_steps: usize,
    total_steps: u32,
    remapped: u64,
    replayed: u64,
    delivered: u64,
    dropped: u64,
    retried: u64,
}

fn fault_record(a: &AppliedFault) -> FaultRecord {
    match *a {
        AppliedFault::NodeDown { at, node } => FaultRecord {
            at: at as u64,
            op: FaultOp::Inject,
            kind: "crash".into(),
            subject: format!("node:{node}"),
        },
        AppliedFault::LinkDown { at, u, v, transient } => FaultRecord {
            at: at as u64,
            op: FaultOp::Inject,
            kind: if transient { "flap" } else { "cut" }.into(),
            subject: format!("link:{u}-{v}"),
        },
        AppliedFault::LinkRepaired { at, u, v } => FaultRecord {
            at: at as u64,
            op: FaultOp::Repair,
            kind: "flap".into(),
            subject: format!("link:{u}-{v}"),
        },
    }
}

/// Predecessor pebbles of guest `v`'s step-`gt` generation: the closed
/// neighbourhood at level `gt − 1`.
fn closed_preds(comp: &GuestComputation, v: Node, gt: u32) -> Vec<Pebble> {
    let mut out = vec![Pebble::new(v, gt - 1)];
    out.extend(comp.graph.neighbors(v).iter().map(|&u| Pebble::new(u, gt - 1)));
    out
}

/// Nearest live host to `from` by BFS over the **base** graph (dead nodes
/// may be traversed — the dead host's rack neighbours are the natural
/// re-embedding targets even if intermediate nodes died too). Falls back to
/// the smallest live id when nothing is reachable. Deterministic.
fn nearest_live(view: &FaultyView, from: Node) -> Node {
    let base = view.base();
    let mut seen = vec![false; base.n()];
    let mut queue = std::collections::VecDeque::new();
    seen[from as usize] = true;
    queue.push_back(from);
    while let Some(v) = queue.pop_front() {
        if view.is_node_up(v) {
            return v;
        }
        for &w in base.neighbors(v) {
            if !seen[w as usize] {
                seen[w as usize] = true;
                queue.push_back(w);
            }
        }
    }
    view.surviving().first().copied().expect("caller checked m_surviving > 0")
}

/// Nearest live holder of `p` reachable from `h` over live edges, if any.
fn nearest_holder(view: &FaultyView, held: &[FxHashSet<u64>], h: Node, p: Pebble) -> Option<Node> {
    let base = view.base();
    let mut seen = vec![false; base.n()];
    let mut queue = std::collections::VecDeque::new();
    seen[h as usize] = true;
    queue.push_back(h);
    while let Some(v) = queue.pop_front() {
        if held[v as usize].contains(&p.key()) {
            return Some(v);
        }
        for &w in base.neighbors(v) {
            if !seen[w as usize] && view.is_edge_up(v, w) {
                seen[w as usize] = true;
                queue.push_back(w);
            }
        }
    }
    None
}

/// Make `h` hold `p`: ship it from the nearest live holder along live
/// edges, or regenerate it recursively from its predecessors (level-0
/// pebbles are universal, so the recursion always bottoms out). Each hop
/// and each generate is its own protocol step — replay is rare, so clarity
/// beats packing here.
fn ensure_pebble(
    comp: &GuestComputation,
    view: &FaultyView,
    held: &mut [FxHashSet<u64>],
    builder: &mut ProtocolBuilder,
    h: Node,
    p: Pebble,
    st: &mut Stats,
) {
    if p.t == 0 || held[h as usize].contains(&p.key()) {
        return;
    }
    if let Some(src) = nearest_holder(view, held, h, p) {
        let path = view.bfs_path(h, src).expect("holder found by BFS is reachable");
        // path runs h → src; ship src → h.
        for w in path.windows(2).rev() {
            builder.transfer(w[1], w[0], p);
            builder.end_step();
            held[w[0] as usize].insert(p.key());
            st.comm_steps += 1;
            st.total_steps += 1;
            st.delivered += 1;
        }
    } else {
        for pred in closed_preds(comp, p.node, p.t) {
            ensure_pebble(comp, view, held, builder, h, pred, st);
        }
        builder.set_op(h, Op::Generate(p));
        builder.end_step();
        held[h as usize].insert(p.key());
        st.replayed += 1;
        st.compute_steps += 1;
        st.total_steps += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{FaultEvent, FaultKind};
    use unet_pebble::check;
    use unet_topology::generators::{random_regular, ring, torus};
    use unet_topology::util::seeded_rng;

    fn bfs_sim(n: usize, m: usize, plan: FaultPlan) -> DegradedSimulator {
        DegradedSimulator { embedding: Embedding::block(n, m), plan, selector: Some(ShortestPath) }
    }

    #[test]
    fn healthy_plan_matches_healthy_invariants() {
        let guest = ring(12);
        let comp = GuestComputation::random(guest.clone(), 99);
        let host = torus(2, 2);
        let sim = bfs_sim(12, 4, FaultPlan::none());
        let run = sim.simulate(&comp, &host, 3, &mut seeded_rng(1)).unwrap();
        check(&guest, &host, &run.run.protocol).expect("certifies");
        assert_eq!(run.run.final_states, comp.run_final(3));
        assert_eq!(run.m_surviving, 4);
        assert_eq!(run.remapped, 0);
        assert_eq!(run.replayed, 0);
        assert_eq!(run.dropped, 0);
        assert!(run.fault_log.is_empty());
    }

    #[test]
    fn crash_mid_run_certifies_and_reproduces() {
        let guest = random_regular(24, 4, &mut seeded_rng(5));
        let comp = GuestComputation::random(guest.clone(), 7);
        let host = torus(3, 3);
        let plan = FaultPlan::new(vec![
            FaultEvent { at: 2, kind: FaultKind::NodeCrash { node: 4 } },
            FaultEvent { at: 3, kind: FaultKind::NodeCrash { node: 0 } },
        ]);
        let sim = bfs_sim(24, 9, plan);
        let run = sim.simulate(&comp, &host, 4, &mut seeded_rng(2)).unwrap();
        check(&guest, &host, &run.run.protocol).expect("degraded protocol certifies");
        assert_eq!(run.run.final_states, comp.run_final(4));
        assert_eq!(run.m_surviving, 7);
        assert!(run.remapped > 0, "guests of hosts 4 and 0 must move");
        // Hosts stay idle after death.
        for &(q, step) in &run.dead_at {
            for row in &run.run.protocol.steps[step as usize..] {
                assert_eq!(row[q as usize], Op::Idle, "host {q} acted after dying");
            }
        }
    }

    #[test]
    fn link_faults_survive_too() {
        let guest = ring(16);
        let comp = GuestComputation::random(guest.clone(), 3);
        let host = torus(3, 3);
        let plan = FaultPlan::link_cuts(&host, 0.2, 2, 11)
            .merge(FaultPlan::link_flaps(&host, 0.1, 1, 2, 12));
        let sim = bfs_sim(16, 9, plan);
        let run = sim.simulate(&comp, &host, 4, &mut seeded_rng(3)).unwrap();
        check(&guest, &host, &run.run.protocol).expect("certifies");
        assert_eq!(run.run.final_states, comp.run_final(4));
        assert_eq!(run.m_surviving, 9, "link faults kill no nodes");
        let repairs = run.fault_log.iter().filter(|r| r.op == FaultOp::Repair).count();
        assert!(repairs > 0, "flaps must heal within the run");
    }

    #[test]
    fn correlated_rack_failure_survives() {
        let guest = random_regular(32, 4, &mut seeded_rng(8));
        let comp = GuestComputation::random(guest.clone(), 9);
        let host = torus(4, 4);
        let plan = FaultPlan::correlated_crashes(&host, 1, 2, 21);
        let sim = bfs_sim(32, 16, plan);
        let run = sim.simulate(&comp, &host, 3, &mut seeded_rng(4)).unwrap();
        check(&guest, &host, &run.run.protocol).expect("certifies");
        assert_eq!(run.run.final_states, comp.run_final(3));
        assert_eq!(run.m_surviving, 11);
        assert!(run.surviving_inefficiency() > 0.0);
    }

    #[test]
    fn all_hosts_dead_is_a_typed_error() {
        let guest = ring(4);
        let comp = GuestComputation::random(guest, 1);
        let host = torus(2, 2);
        let plan = FaultPlan::crashes(&host, 1.0, 2, 0);
        let sim = bfs_sim(4, 4, plan);
        let err = sim.simulate(&comp, &host, 3, &mut seeded_rng(5)).unwrap_err();
        assert_eq!(err, DegradedError::AllHostsDead { at: 2 });
        assert!(err.to_string().contains("all hosts dead"));
    }

    #[test]
    fn tuned_cached_parallel_matches_tuned_sequential_uncached() {
        // The tentpole equivalence, degraded edition: same seed, any
        // (threads × cache) tuning → identical protocol bytes, states,
        // and fault stats, still certified.
        let guest = random_regular(24, 4, &mut seeded_rng(5));
        let comp = GuestComputation::random(guest.clone(), 7);
        let host = torus(3, 3);
        let plan = FaultPlan::crashes(&host, 0.25, 2, 17);
        let sim = bfs_sim(24, 9, plan);
        let baseline_tuning = DegradedTuning { threads: 1, cache: false };
        let fast_tuning = DegradedTuning { threads: 4, cache: true };
        let base = sim
            .simulate_tuned(
                &comp,
                &host,
                5,
                &baseline_tuning,
                &mut seeded_rng(6),
                &mut NoopRecorder,
            )
            .unwrap();
        let fast = sim
            .simulate_tuned(&comp, &host, 5, &fast_tuning, &mut seeded_rng(6), &mut NoopRecorder)
            .unwrap();
        assert_eq!(base.run.protocol, fast.run.protocol, "bit-for-bit protocols");
        assert_eq!(base.run.final_states, fast.run.final_states);
        assert_eq!(base.fault_log, fast.fault_log);
        assert_eq!(base.delivered, fast.delivered);
        assert_eq!(base.dropped, fast.dropped);
        assert_eq!(base.replayed, fast.replayed);
        check(&guest, &host, &fast.run.protocol).expect("cached degraded run certifies");
        assert_eq!(fast.run.final_states, comp.run_final(5));
    }

    #[test]
    fn tuned_cache_reroutes_after_epoch_bump() {
        use unet_obs::InMemoryRecorder;
        // Crash at boundary 3 of a 6-step run: the cache must invalidate at
        // the fault and rebuild, i.e. at least two misses.
        let guest = random_regular(24, 4, &mut seeded_rng(5));
        let comp = GuestComputation::random(guest.clone(), 7);
        let host = torus(3, 3);
        let plan = FaultPlan::new(vec![crate::plan::FaultEvent {
            at: 3,
            kind: crate::plan::FaultKind::NodeCrash { node: 4 },
        }]);
        let sim = bfs_sim(24, 9, plan);
        let mut rec = InMemoryRecorder::new();
        let run = sim
            .simulate_tuned(
                &comp,
                &host,
                6,
                &DegradedTuning::default(),
                &mut seeded_rng(2),
                &mut rec,
            )
            .unwrap();
        check(&guest, &host, &run.run.protocol).expect("certifies");
        assert_eq!(run.run.final_states, comp.run_final(6));
        assert!(rec.counter_value("sim.cache.misses") >= 2, "fault must force a reroute");
        assert!(rec.counter_value("sim.cache.hits") >= 1, "quiet steps replay the plan");
    }

    #[test]
    fn determinism_same_seed_same_run() {
        let guest = random_regular(24, 4, &mut seeded_rng(5));
        let comp = GuestComputation::random(guest.clone(), 7);
        let host = torus(3, 3);
        let plan = FaultPlan::crashes(&host, 0.25, 2, 17);
        let sim = bfs_sim(24, 9, plan);
        let a = sim.simulate(&comp, &host, 3, &mut seeded_rng(6)).unwrap();
        let b = sim.simulate(&comp, &host, 3, &mut seeded_rng(6)).unwrap();
        assert_eq!(a.run.protocol.steps, b.run.protocol.steps);
        assert_eq!(a.fault_log, b.fault_log);
        assert_eq!(a.run.final_states, b.run.final_states);
        assert_eq!(a.replayed, b.replayed);
    }
}
