//! Experiment E3: regenerate Figure 1 — a dependency tree in `Γ_{G₀}`.
//!
//! Builds `G₀` (multitorus ∪ certified expander, Definition 3.9), constructs
//! the Lemma 3.10 dependency tree of one block, machine-verifies every claim
//! of the lemma (root placement, binary degree, leaf coverage, size ≤ 48a²),
//! and renders it in ASCII.
//!
//! Run with: `cargo run --release --example dependency_tree`

use universal_networks::lowerbound::build_g0;
use universal_networks::pebble::deptree::{dependency_tree, tree_depth, verify_tree};
use universal_networks::topology::util::seeded_rng;

fn main() {
    let mut rng = seeded_rng(1995);
    // a = 2 ⇒ block side 4 ⇒ 16-node block tori on an 8×8 guest grid.
    let (a, n) = (2usize, 64usize);
    let g0 = build_g0(n, a, &mut rng);
    println!(
        "G0: n = {}, degree ≤ {}, {} blocks of side {}, certified expander (α = {:.2}, β = {:.3}, γ = {:.4})",
        g0.n(),
        g0.graph.max_degree(),
        g0.h(),
        g0.block_side,
        g0.alpha,
        g0.beta,
        g0.gamma
    );

    let block = &g0.blocks[0];
    let depth = tree_depth(g0.block_side);
    let t_end = depth + 2;
    let root = block.at(1, 1);
    let tree = dependency_tree(block, root, t_end);
    verify_tree(&tree, &g0.graph, block).expect("Lemma 3.10 invariants hold");

    println!(
        "\ndependency tree T_{{P{root}, t={t_end}}}: depth {depth}, size {} (paper bound 48a² = {})",
        tree.size(),
        48 * g0.a * g0.a
    );
    println!(
        "leaves: {} (= block size {}), every block cell covered exactly once\n",
        tree.leaves().count(),
        g0.block_side * g0.block_side
    );
    println!("{}", tree.render_ascii(200));

    // Size statistics across all roots and block sides (the lemma holds for
    // every root by vertex-transitivity — verify exhaustively).
    println!("size statistics over all roots of block 0:");
    let mut sizes: Vec<usize> = block
        .nodes()
        .iter()
        .map(|&r| {
            let t = dependency_tree(block, r, t_end);
            verify_tree(&t, &g0.graph, block).expect("verifies for every root");
            t.size()
        })
        .collect();
    sizes.sort_unstable();
    println!(
        "  min {}  median {}  max {}  bound {}",
        sizes[0],
        sizes[sizes.len() / 2],
        sizes[sizes.len() - 1],
        48 * g0.a * g0.a
    );
}
