//! `bench-json` — machine-readable benchmark artifacts.
//!
//! Runs the E1 (upper-bound), E2 (lower-bound trade-off), E16
//! (degraded-mode fault sweep), and E17 (engine thread/cache sweep)
//! kernels and writes `BENCH_E1.json` / `BENCH_E2.json` /
//! `BENCH_E16.json` / `BENCH_E17.json`: one JSON object per experiment
//! with per-row slowdown, inefficiency, makespan, sizes, and wall-clock
//! time.
//! The artifacts are the CI/regression-friendly twin of the human tables
//! the criterion benches print.
//!
//! ```text
//! cargo run -p unet-bench --bin bench-json [--release] [--quick] [OUT_DIR]
//! ```
//!
//! `--quick` shrinks every experiment to CI-smoke sizes (seconds, not
//! minutes) without changing the artifact schema.

use std::time::Instant;
use unet_bench::{butterfly_engine_run, butterfly_metrics, rng, standard_guest};
use unet_core::bounds;
use unet_core::prelude::{Embedding, GuestComputation};
use unet_faults::{DegradedSimulator, FaultPlan};
use unet_lowerbound::tradeoff_table;
use unet_obs::json::Value;
use unet_routing::butterfly::GreedyButterfly;
use unet_routing::greedy::DimensionOrder;
use unet_routing::PathSelector;
use unet_topology::generators::{butterfly, torus};
use unet_topology::util::seeded_rng;
use unet_topology::Graph;

const E2_GAMMA: f64 = 0.125;

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn e1_artifact(quick: bool) -> Value {
    let n = if quick { 96 } else { 512 };
    let steps = if quick { 2u32 } else { 3 };
    let dims = if quick { 2..=3usize } else { 2..=4 };
    let (guest, comp) = standard_guest(n, 0xE1);
    let mut r = rng();
    let mut rows = Vec::new();
    let total_start = Instant::now();
    for dim in dims {
        let wall_start = Instant::now();
        let m = butterfly_metrics(&guest, &comp, dim, steps, &mut r);
        let wall_ms = wall_start.elapsed().as_secs_f64() * 1e3;
        rows.push(obj(vec![
            ("dim", Value::UInt(dim as u64)),
            ("guest_n", Value::UInt(m.guest_n as u64)),
            ("host_m", Value::UInt(m.host_m as u64)),
            ("guest_steps", Value::UInt(m.guest_t as u64)),
            ("makespan", Value::UInt(m.host_steps as u64)),
            ("slowdown", Value::Float(m.slowdown)),
            ("inefficiency", Value::Float(m.inefficiency)),
            ("avg_weight", Value::Float(m.avg_weight)),
            ("wall_ms", Value::Float(wall_ms)),
        ]));
    }
    obj(vec![
        ("experiment", Value::Str("E1".into())),
        ("title", Value::Str("Theorem 2.1 upper bound: butterfly hosts".into())),
        ("guest", Value::Str(format!("random-regular n={n} d=4"))),
        ("guest_n", Value::UInt(n as u64)),
        ("guest_steps", Value::UInt(steps as u64)),
        ("rows", Value::Arr(rows)),
        ("wall_ms_total", Value::Float(total_start.elapsed().as_secs_f64() * 1e3)),
    ])
}

fn e2_artifact(quick: bool) -> Value {
    let exp = if quick { 8u32 } else { 14 };
    let n = 1u64 << exp;
    let ms: Vec<u64> = (3..=exp).map(|e| 1u64 << e).collect();
    let wall_start = Instant::now();
    let table = tradeoff_table(n, &ms, E2_GAMMA, 4);
    let wall_ms = wall_start.elapsed().as_secs_f64() * 1e3;
    let rows = table
        .iter()
        .map(|row| {
            obj(vec![
                ("host_m", Value::UInt(row.m)),
                ("guest_n", Value::UInt(n)),
                ("inefficiency_ideal", Value::Float(row.k_ideal)),
                ("inefficiency_shape", Value::Float(row.k_shape)),
                ("inefficiency_paper", Value::Float(row.k_paper)),
                ("slowdown_shape", Value::Float(row.s_shape)),
                ("slowdown_upper", Value::Float(row.s_upper)),
                ("ms_product", Value::Float(row.ms_product)),
            ])
        })
        .collect();
    obj(vec![
        ("experiment", Value::Str("E2".into())),
        ("title", Value::Str("Theorem 3.1 lower-bound trade-off".into())),
        ("guest_n", Value::UInt(n)),
        ("gamma", Value::Float(E2_GAMMA)),
        ("rows", Value::Arr(rows)),
        ("wall_ms_total", Value::Float(wall_ms)),
    ])
}

/// One degraded run on `host`: crash-stop `rate` of the nodes at boundary
/// 2, simulate, certify, and report the measured numbers against the
/// Theorem 3.1 shape on the **surviving** size `m'`.
fn e16_row<S: PathSelector>(
    label: &str,
    host: &Graph,
    selector: S,
    guest_n: usize,
    steps: u32,
    rate: f64,
) -> Value {
    let (guest, comp) = standard_guest(guest_n, 0xE16);
    let plan = FaultPlan::crashes(host, rate, 2, 0xE16);
    let sim = DegradedSimulator {
        embedding: Embedding::block(guest_n, host.n()),
        plan,
        selector: Some(selector),
    };
    let wall_start = Instant::now();
    let run = sim
        .simulate(&comp, host, steps, &mut seeded_rng(0xE16))
        .expect("faults leave survivors at these rates");
    unet_pebble::check(&guest, host, &run.run.protocol).expect("degraded protocol certifies");
    assert_eq!(run.run.final_states, comp.run_final(steps), "bit-for-bit");
    let wall_ms = wall_start.elapsed().as_secs_f64() * 1e3;
    let k = run.surviving_inefficiency();
    let bound = bounds::lower_bound_inefficiency(run.m_surviving, 1.0);
    assert!(
        k >= bound,
        "measured k = {k:.2} on m' = {} dipped below the Theorem 3.1 shape {bound:.2}",
        run.m_surviving
    );
    obj(vec![
        ("host", Value::Str(label.into())),
        ("fault_rate", Value::Float(rate)),
        ("host_m", Value::UInt(host.n() as u64)),
        ("m_surviving", Value::UInt(run.m_surviving as u64)),
        ("guest_n", Value::UInt(guest_n as u64)),
        ("slowdown", Value::Float(run.run.slowdown())),
        ("k", Value::Float(k)),
        ("k_bound", Value::Float(bound)),
        ("dropped", Value::UInt(run.dropped)),
        ("retried", Value::UInt(run.retried)),
        ("replayed", Value::UInt(run.replayed)),
        ("remapped", Value::UInt(run.remapped)),
        ("wall_ms", Value::Float(wall_ms)),
    ])
}

fn e16_artifact(quick: bool) -> Value {
    let (n, dim, side, steps) = if quick { (48, 2, 3, 2u32) } else { (256, 3, 6, 3) };
    // Quick mode uses 0.2 so that ⌊rate·m⌋ ≥ 1 even on the 9-node mesh —
    // a "faulty" row that kills nobody would test nothing.
    let rates: &[f64] = if quick { &[0.0, 0.2] } else { &[0.0, 0.05, 0.1, 0.2] };
    let bf = butterfly(dim);
    let mesh = torus(side, side);
    let total_start = Instant::now();
    let mut rows = Vec::new();
    for &rate in rates {
        rows.push(e16_row("butterfly", &bf, GreedyButterfly { dim }, n, steps, rate));
        rows.push(e16_row("mesh", &mesh, DimensionOrder::torus(side, side), n, steps, rate));
    }
    obj(vec![
        ("experiment", Value::Str("E16".into())),
        ("title", Value::Str("Degraded-mode simulation: slowdown vs crash-stop fault rate".into())),
        ("guest", Value::Str(format!("random-regular n={n} d=4"))),
        ("guest_n", Value::UInt(n as u64)),
        ("guest_steps", Value::UInt(steps as u64)),
        ("fault_boundary", Value::UInt(2)),
        ("rows", Value::Arr(rows)),
        ("wall_ms_total", Value::Float(total_start.elapsed().as_secs_f64() * 1e3)),
    ])
}

/// E17: the thread/cache sweep over the engine's parallel-phase and
/// route-plan-cache settings, on the E1 butterfly configuration. Every row
/// re-runs the same `(guest, router, seed)` through the `Simulation`
/// builder with a different `(threads, cache)` pair. The first row
/// (sequential, uncached) is the baseline; every other row is asserted
/// bit-for-bit identical to it and checker-certified, so `wall_ms` is the
/// only column allowed to vary between rows.
fn e17_artifact(quick: bool) -> Value {
    let (n, dim, steps) = if quick { (96, 2, 3u32) } else { (512, 3, 8) };
    let (guest, comp) = standard_guest(n, 0xE1);
    let host = butterfly(dim);
    let configs: [(&str, usize, bool); 4] = [
        ("seq-uncached", 1, false),
        ("seq-cached", 1, true),
        ("par-uncached", 4, false),
        ("par-cached", 4, true),
    ];
    let total_start = Instant::now();
    let mut baseline: Option<unet_core::SimulationRun> = None;
    let mut rows = Vec::new();
    for (label, threads, cache) in configs {
        let wall_start = Instant::now();
        let (run, hits, misses) =
            butterfly_engine_run(&guest, &comp, dim, steps, 0xE17, threads, cache);
        let wall_ms = wall_start.elapsed().as_secs_f64() * 1e3;
        let trace = unet_pebble::check(&guest, &host, &run.protocol)
            .unwrap_or_else(|e| panic!("E17 {label} failed to certify: {e}"));
        assert_eq!(run.final_states, comp.run_final(steps), "{label}: states bit-for-bit");
        if let Some(base) = &baseline {
            assert_eq!(run.protocol, base.protocol, "{label}: protocol differs from baseline");
            assert_eq!(run.final_states, base.final_states, "{label}: states differ");
        }
        rows.push(obj(vec![
            ("config", Value::Str(label.into())),
            ("threads", Value::UInt(threads as u64)),
            ("cache", Value::Bool(cache)),
            ("guest_n", Value::UInt(n as u64)),
            ("host_m", Value::UInt(host.n() as u64)),
            ("guest_steps", Value::UInt(steps as u64)),
            ("makespan", Value::UInt(trace.host_steps as u64)),
            ("cache_hits", Value::UInt(hits)),
            ("cache_misses", Value::UInt(misses)),
            ("wall_ms", Value::Float(wall_ms)),
        ]));
        if baseline.is_none() {
            baseline = Some(run);
        }
    }
    obj(vec![
        ("experiment", Value::Str("E17".into())),
        ("title", Value::Str("Engine thread/cache sweep: identical protocols, wall time".into())),
        ("guest", Value::Str(format!("random-regular n={n} d=4"))),
        ("guest_n", Value::UInt(n as u64)),
        ("guest_steps", Value::UInt(steps as u64)),
        ("router", Value::Str("butterfly-valiant".into())),
        ("rows", Value::Arr(rows)),
        ("wall_ms_total", Value::Float(total_start.elapsed().as_secs_f64() * 1e3)),
    ])
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_dir = args.iter().find(|a| !a.starts_with("--")).cloned().unwrap_or_else(|| ".".into());
    let artifacts = [
        ("BENCH_E1.json", e1_artifact(quick)),
        ("BENCH_E2.json", e2_artifact(quick)),
        ("BENCH_E16.json", e16_artifact(quick)),
        ("BENCH_E17.json", e17_artifact(quick)),
    ];
    for (name, artifact) in artifacts {
        let path = format!("{out_dir}/{name}");
        let text = artifact.to_json() + "\n";
        std::fs::write(&path, &text).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        // Self-validate: what we wrote must parse back as JSON with rows.
        let back = unet_obs::json::parse(&text).unwrap_or_else(|e| panic!("{path} invalid: {e}"));
        let rows = back.get("rows").and_then(Value::as_arr).expect("artifact has rows");
        println!("wrote {path} ({} rows)", rows.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unet_obs::json::parse;

    #[test]
    fn artifacts_round_trip_with_required_fields() {
        for artifact in
            [e1_artifact(true), e2_artifact(true), e16_artifact(true), e17_artifact(true)]
        {
            let text = artifact.to_json();
            let back = parse(&text).expect("artifact is valid JSON");
            let rows = back.get("rows").and_then(Value::as_arr).expect("rows");
            assert!(!rows.is_empty());
            for row in rows {
                assert!(row.get("host_m").and_then(Value::as_u64).is_some());
                assert!(row.get("guest_n").and_then(Value::as_u64).is_some());
            }
            assert!(back.get("wall_ms_total").and_then(Value::as_f64).unwrap() >= 0.0);
        }
        // E1 rows carry measured slowdown + wall time (the regression signal).
        let e1 = e1_artifact(true);
        for row in e1.get("rows").and_then(Value::as_arr).unwrap() {
            assert!(row.get("slowdown").and_then(Value::as_f64).unwrap() >= 1.0);
            assert!(row.get("inefficiency").and_then(Value::as_f64).unwrap() > 0.0);
            assert!(row.get("makespan").and_then(Value::as_u64).unwrap() > 0);
            assert!(row.get("wall_ms").and_then(Value::as_f64).unwrap() >= 0.0);
        }
    }

    #[test]
    fn e17_rows_are_equivalent_and_cache_counters_line_up() {
        // e17_artifact itself asserts bit-for-bit equality against the
        // sequential-uncached baseline; here we check the serialized
        // schema: 4 configs, identical makespans, and cache counters that
        // reflect each row's cache setting.
        let text = e17_artifact(true).to_json();
        let back = parse(&text).expect("valid JSON");
        let rows = back.get("rows").and_then(Value::as_arr).unwrap();
        assert_eq!(rows.len(), 4, "2 thread settings × 2 cache settings");
        let makespan0 = rows[0].get("makespan").and_then(Value::as_u64).unwrap();
        for row in rows {
            assert_eq!(row.get("makespan").and_then(Value::as_u64).unwrap(), makespan0);
            let cached = matches!(row.get("cache"), Some(Value::Bool(true)));
            let hits = row.get("cache_hits").and_then(Value::as_u64).unwrap();
            let misses = row.get("cache_misses").and_then(Value::as_u64).unwrap();
            if cached {
                assert_eq!(misses, 1, "one cold comm phase per cached run");
                assert!(hits >= 1, "replays after the first comm phase");
            } else {
                assert_eq!((hits, misses), (0, 0));
            }
        }
    }

    #[test]
    fn e16_rows_respect_the_surviving_size_bound() {
        // e16_row itself asserts k ≥ α·log₂(m'); here we re-check from the
        // serialized artifact so schema drift can't hide a violation.
        let e16 = e16_artifact(true);
        let text = e16.to_json();
        let back = parse(&text).expect("valid JSON");
        let rows = back.get("rows").and_then(Value::as_arr).unwrap();
        assert_eq!(rows.len(), 4, "2 rates × 2 hosts in quick mode");
        let mut faulted = 0;
        for row in rows {
            let m = row.get("host_m").and_then(Value::as_u64).unwrap();
            let m_surv = row.get("m_surviving").and_then(Value::as_u64).unwrap();
            let k = row.get("k").and_then(Value::as_f64).unwrap();
            let bound = row.get("k_bound").and_then(Value::as_f64).unwrap();
            assert!(m_surv <= m && m_surv > 0);
            assert!(k >= bound, "k = {k} below bound {bound}");
            let rate = row.get("fault_rate").and_then(Value::as_f64).unwrap();
            if rate > 0.0 {
                faulted += 1;
                assert!(m_surv < m, "crashes at rate {rate} must kill someone");
            } else {
                assert_eq!(m_surv, m);
                assert_eq!(row.get("dropped").and_then(Value::as_u64).unwrap(), 0);
            }
        }
        assert_eq!(faulted, 2);
    }
}
