//! The router abstraction used by the simulation engine.
//!
//! Theorem 2.1 is parametric in the host's routing capability: the slowdown
//! is `O(route_M(n/m))`. A [`Router`] takes an `h–h` problem on the host and
//! returns a synchronous transfer schedule; the simulator converts it into
//! pebble-protocol sends/receives. Implementations cover the paper's whole
//! spectrum: online greedy, online randomized (Valiant), and offline
//! (Beneš/Waksman).

use rand::rngs::StdRng;
use unet_obs::{NoopRecorder, Recorder};
use unet_routing::packet::{
    generous_step_limit, make_packets, route_recorded, Discipline, Outcome, PathSelector,
};
use unet_routing::problem::RoutingProblem;
use unet_topology::{Graph, Node};

/// A routing strategy on a fixed host.
pub trait Router {
    /// Produce a transfer schedule solving `prob` on `host`.
    fn route(&self, host: &Graph, prob: &RoutingProblem, rng: &mut StdRng) -> Outcome;

    /// [`Router::route`] with instrumentation. The recorder is a trait
    /// object because `Router` itself is used as one. The default just
    /// ignores the recorder; engine-backed routers override it to thread
    /// the recorder into [`unet_routing::packet::route_recorded`].
    fn route_recorded(
        &self,
        host: &Graph,
        prob: &RoutingProblem,
        rng: &mut StdRng,
        rec: &mut (dyn Recorder + '_),
    ) -> Outcome {
        let _ = rec;
        self.route(host, prob, rng)
    }

    /// Human-readable strategy name (for experiment tables).
    fn name(&self) -> &'static str;

    /// Check that this router can operate on `host` **before** any routing
    /// is attempted. The builder front door calls this and converts a
    /// rejection into `SimError::Router`, replacing the panics that
    /// topology-bound routers (Beneš, Galil–Paul) used to raise mid-run.
    /// The default accepts every host.
    fn validate(&self, host: &Graph) -> Result<(), String> {
        let _ = host;
        Ok(())
    }
}

/// Wrap any [`PathSelector`] (BFS, dimension-order, butterfly greedy,
/// Valiant, …) into a router via the store-and-forward engine.
pub struct SelectorRouter<S: PathSelector> {
    /// The path selector.
    pub selector: S,
    /// Strategy name.
    pub label: &'static str,
}

impl<S: PathSelector> SelectorRouter<S> {
    /// Construct with a label.
    pub fn new(selector: S, label: &'static str) -> Self {
        SelectorRouter { selector, label }
    }
}

impl<S: PathSelector> SelectorRouter<S> {
    fn route_inner<REC: Recorder + ?Sized>(
        &self,
        host: &Graph,
        prob: &RoutingProblem,
        rng: &mut StdRng,
        rec: &mut REC,
    ) -> Outcome {
        let packets = make_packets(host, &prob.pairs, &self.selector, rng)
            .expect("embedding maps guests onto a connected host");
        route_recorded(
            host,
            &packets,
            Discipline::FarthestFirst,
            generous_step_limit(&packets),
            rec,
        )
        .expect("engine progress guarantee under generous limit")
    }
}

impl<S: PathSelector> Router for SelectorRouter<S> {
    fn route(&self, host: &Graph, prob: &RoutingProblem, rng: &mut StdRng) -> Outcome {
        self.route_inner(host, prob, rng, &mut NoopRecorder)
    }

    fn route_recorded(
        &self,
        host: &Graph,
        prob: &RoutingProblem,
        rng: &mut StdRng,
        rec: &mut (dyn Recorder + '_),
    ) -> Outcome {
        self.route_inner(host, prob, rng, rec)
    }

    fn name(&self) -> &'static str {
        self.label
    }

    fn validate(&self, host: &Graph) -> Result<(), String> {
        // Path selection panics on unreachable targets; reject up front so
        // the builder can return `SimError::Router` instead.
        if unet_topology::analysis::is_connected(host) {
            Ok(())
        } else {
            Err("store-and-forward path selection requires a connected host".into())
        }
    }
}

/// Offline router for the Beneš-network host: sources/destinations must be
/// column-0 nodes; uses Waksman's algorithm with wave pipelining
/// (`route(h) = O(h + log m)` — the Section 2 offline bound).
pub struct OfflineBenesRouter {
    /// Beneš dimension (`2^dim` rows, `2·dim` columns).
    pub dim: usize,
}

impl Router for OfflineBenesRouter {
    fn route(&self, host: &Graph, prob: &RoutingProblem, _rng: &mut StdRng) -> Outcome {
        let rows = 1usize << self.dim;
        assert_eq!(host.n(), 2 * self.dim * rows, "host must be benes_network(dim)");
        // Map column-0 node ids to rows.
        let pairs: Vec<(u32, u32)> = prob
            .pairs
            .iter()
            .map(|&(s, t)| {
                assert!(
                    (s as usize) < rows && (t as usize) < rows,
                    "offline Beneš routing expects column-0 endpoints"
                );
                (s, t)
            })
            .collect();
        if pairs.is_empty() {
            return Outcome { steps: 0, delivered_at: vec![], transfers: vec![], max_queue: 0 };
        }
        let (makespan, transfers, delivered_at) =
            unet_routing::benes::benes_h_h_schedule(self.dim, &pairs);
        Outcome { steps: makespan, delivered_at, transfers, max_queue: 1 }
    }

    fn name(&self) -> &'static str {
        "offline-benes-waksman"
    }

    fn validate(&self, host: &Graph) -> Result<(), String> {
        let rows = 1usize << self.dim;
        if host.n() == 2 * self.dim * rows {
            Ok(())
        } else {
            Err(format!(
                "host has {} nodes but benes_network({}) has {}",
                host.n(),
                self.dim,
                2 * self.dim * rows
            ))
        }
    }
}

/// Convenience constructors for the standard router/host pairings used in
/// the experiments.
pub mod presets {
    use super::*;
    use unet_routing::butterfly::{GreedyButterfly, GreedyWrappedButterfly, ValiantButterfly};
    use unet_routing::greedy::DimensionOrder;
    use unet_routing::packet::ShortestPath;

    /// BFS shortest-path router (any connected host).
    pub fn bfs() -> SelectorRouter<ShortestPath> {
        SelectorRouter::new(ShortestPath, "bfs-shortest-path")
    }

    /// Greedy bit-fixing router for a `dim`-dimensional butterfly host.
    pub fn butterfly_greedy(dim: usize) -> SelectorRouter<GreedyButterfly> {
        SelectorRouter::new(GreedyButterfly { dim }, "butterfly-greedy")
    }

    /// Valiant randomized router for a `dim`-dimensional butterfly host.
    pub fn butterfly_valiant(dim: usize) -> SelectorRouter<ValiantButterfly> {
        SelectorRouter::new(ValiantButterfly { dim }, "butterfly-valiant")
    }

    /// Cyclic bit-fixing router for a wrapped `dim`-dimensional butterfly.
    pub fn wrapped_butterfly_greedy(dim: usize) -> SelectorRouter<GreedyWrappedButterfly> {
        SelectorRouter::new(GreedyWrappedButterfly { dim }, "wrapped-butterfly-greedy")
    }

    /// Dimension-order router for a `rows × cols` mesh host.
    pub fn mesh_xy(rows: usize, cols: usize) -> SelectorRouter<DimensionOrder> {
        SelectorRouter::new(DimensionOrder::mesh(rows, cols), "mesh-xy")
    }

    /// Dimension-order router for a `rows × cols` torus host.
    pub fn torus_xy(rows: usize, cols: usize) -> SelectorRouter<DimensionOrder> {
        SelectorRouter::new(DimensionOrder::torus(rows, cols), "torus-xy")
    }
}

/// The column-0 node ids of a Beneš host — the natural embedding targets for
/// [`OfflineBenesRouter`].
pub fn benes_column0(dim: usize) -> Vec<Node> {
    (0..(1u32 << dim)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use unet_routing::benes::benes_network;
    use unet_topology::generators::torus;
    use unet_topology::util::seeded_rng;

    #[test]
    fn selector_router_delivers() {
        let host = torus(4, 4);
        let prob = RoutingProblem::new(16, vec![(0, 15), (15, 0), (3, 3)]);
        let r = presets::bfs();
        let out = r.route(&host, &prob, &mut seeded_rng(1));
        assert!(out.delivered_at.iter().all(|&d| d != u32::MAX));
        assert_eq!(r.name(), "bfs-shortest-path");
    }

    #[test]
    fn benes_router_round_trip() {
        let dim = 3;
        let host = benes_network(dim);
        let prob = RoutingProblem::new(host.n(), vec![(0, 5), (5, 0), (2, 2)]);
        let r = OfflineBenesRouter { dim };
        let out = r.route(&host, &prob, &mut seeded_rng(2));
        assert_eq!(out.delivered_at.len(), 3);
        assert!(out.steps >= 2 * (2 * dim as u32 - 1));
    }

    #[test]
    fn benes_router_empty_problem() {
        let dim = 2;
        let host = benes_network(dim);
        let prob = RoutingProblem::new(host.n(), vec![]);
        let out = OfflineBenesRouter { dim }.route(&host, &prob, &mut seeded_rng(3));
        assert_eq!(out.steps, 0);
    }

    #[test]
    #[should_panic(expected = "column-0")]
    fn benes_router_rejects_off_column_endpoints() {
        let dim = 2;
        let host = benes_network(dim);
        let prob = RoutingProblem::new(host.n(), vec![(9, 0)]);
        OfflineBenesRouter { dim }.route(&host, &prob, &mut seeded_rng(4));
    }

    #[test]
    fn column0_ids() {
        assert_eq!(benes_column0(2), vec![0, 1, 2, 3]);
    }

    #[test]
    fn validate_accepts_and_rejects() {
        // Selector router: connected host OK, disconnected host rejected.
        let r = presets::bfs();
        assert!(r.validate(&torus(3, 3)).is_ok());
        let mut b = unet_topology::GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(2, 3);
        assert!(r.validate(&b.build()).is_err());
        // Beneš router: exact size or nothing.
        let b = OfflineBenesRouter { dim: 2 };
        assert!(b.validate(&benes_network(2)).is_ok());
        let err = b.validate(&torus(3, 3)).unwrap_err();
        assert!(err.contains("benes_network(2)"), "{err}");
    }
}
