//! Minimal SIGTERM-to-flag plumbing for graceful drain.
//!
//! No `libc` crate: on Unix we call the C library's `signal` symbol
//! directly (std already links it) and the handler does nothing but store
//! into a static `AtomicBool` — the only thing that is async-signal-safe
//! anyway. On other platforms installation is a no-op and the flag simply
//! never trips (stdin-close remains the drain trigger there).

use std::sync::atomic::{AtomicBool, Ordering};

static TERM: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
extern "C" fn on_term(_sig: i32) {
    TERM.store(true, Ordering::SeqCst);
}

/// Install a SIGTERM handler that sets a process-global flag; returns the
/// flag. Safe to call more than once.
pub fn install_sigterm_flag() -> &'static AtomicBool {
    #[cfg(unix)]
    unsafe {
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGTERM: i32 = 15;
        signal(SIGTERM, on_term as extern "C" fn(i32) as *const () as usize);
    }
    &TERM
}

/// Has SIGTERM been received since [`install_sigterm_flag`]?
pub fn sigterm_received() -> bool {
    TERM.load(Ordering::SeqCst)
}
