//! `bench-json` — machine-readable benchmark artifacts, from the registry.
//!
//! Thin driver over [`unet_bench::registry`]: sweeps every registered
//! experiment (E1, E2, E16, E17) and writes the versioned `BENCH.json`
//! (schema `unet-bench/2`) plus — for one deprecation cycle — the legacy
//! per-experiment `BENCH_E*.json` files, emitted from the *same* rows via
//! [`unet_bench::schema::legacy_artifacts`]. The experiment logic itself
//! (grids, runners, expected shapes) lives in the registry; this binary
//! only does I/O. Prefer `unet bench run` / `unet bench diff` for the
//! full CLI (filtering, resume, the shape-regression gate).
//!
//! ```text
//! cargo run -p unet-bench --bin bench-json [--release] [--quick] [OUT_DIR]
//! ```
//!
//! `--quick` shrinks every experiment to CI-smoke sizes (seconds, not
//! minutes) without changing the artifact schema.

use unet_bench::schema::legacy_artifacts;
use unet_bench::sweep::{check_shapes, run_to_file, SweepOptions};
use unet_obs::json::Value;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_dir = args.iter().find(|a| !a.starts_with("--")).cloned().unwrap_or_else(|| ".".into());
    let opts = SweepOptions { quick, ..SweepOptions::default() };
    let bench_path = format!("{out_dir}/BENCH.json");
    let (doc, progress) = run_to_file(&bench_path, &opts, false).unwrap_or_else(|e| {
        eprintln!("bench-json: {e}");
        std::process::exit(1);
    });
    for line in &progress {
        println!("{line}");
    }
    println!("wrote {bench_path} ({} experiments)", doc.experiments.len());
    for (name, artifact) in legacy_artifacts(&doc) {
        let path = format!("{out_dir}/{name}");
        let text = artifact.to_json() + "\n";
        std::fs::write(&path, &text).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        // Self-validate: what we wrote must parse back as JSON with rows.
        let back = unet_obs::json::parse(&text).unwrap_or_else(|e| panic!("{path} invalid: {e}"));
        let rows = back.get("rows").and_then(Value::as_arr).expect("artifact has rows");
        println!("wrote {path} ({} rows, deprecated: use BENCH.json)", rows.len());
    }
    // The artifact must satisfy its own shape predicates at birth.
    let mut bent = 0;
    for o in check_shapes(&doc) {
        if let Some(v) = o.violation {
            eprintln!("bench-json: {} shape violated: {v}", o.exp);
            bent += 1;
        }
    }
    if bent > 0 {
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use unet_bench::registry::registry;
    use unet_bench::schema::legacy_artifacts;
    use unet_bench::sweep::{run_experiment, run_sweep, SweepOptions};
    use unet_obs::json::{parse, Value};

    fn quick_doc(filter: &str) -> unet_bench::schema::BenchDoc {
        run_sweep(&SweepOptions {
            quick: true,
            filter: Some(SweepOptions::parse_filter(filter)),
            threads: 2,
        })
    }

    #[test]
    fn artifacts_round_trip_with_required_fields() {
        // E1 exercises the builder engine; E2 the trade-off table. (E16 and
        // E17 have their own registry tests.)
        let doc = quick_doc("e1,e2");
        for exp in &doc.experiments {
            assert!(!exp.rows.is_empty());
            for row in &exp.rows {
                assert!(row.get("host_m").and_then(Value::as_u64).is_some());
                assert!(row.get("guest_n").and_then(Value::as_u64).is_some());
            }
            assert!(exp.wall_ms_total >= 0.0);
        }
        // E1 rows carry measured slowdown + wall time (the regression signal).
        let e1 = doc.experiment("E1").expect("E1 present");
        for row in &e1.rows {
            assert!(row.get("slowdown").and_then(Value::as_f64).unwrap() >= 1.0);
            assert!(row.get("inefficiency").and_then(Value::as_f64).unwrap() > 0.0);
            assert!(row.get("makespan").and_then(Value::as_u64).unwrap() > 0);
            assert!(row.get("wall_ms").and_then(Value::as_f64).unwrap() >= 0.0);
        }
    }

    #[test]
    fn legacy_artifacts_keep_the_v1_surface() {
        let doc = quick_doc("e2");
        let legacy = legacy_artifacts(&doc);
        assert_eq!(legacy.len(), 1);
        let (name, artifact) = &legacy[0];
        assert_eq!(name, "BENCH_E2.json");
        let text = artifact.to_json();
        let back = parse(&text).expect("valid JSON");
        assert_eq!(back.get("experiment").and_then(Value::as_str), Some("E2"));
        let rows = back.get("rows").and_then(Value::as_arr).expect("rows");
        assert!(!rows.is_empty());
        assert!(back.get("wall_ms_total").and_then(Value::as_f64).unwrap() >= 0.0);
    }

    #[test]
    fn e16_rows_respect_the_surviving_size_bound() {
        // The registry's shape predicates check k ≥ α·log₂(m') at gate
        // time; here we re-check from the rows so schema drift can't hide
        // a violation.
        let exp = registry().into_iter().find(|e| e.id == "E16").unwrap();
        let result = run_experiment(&exp, true, 2, None);
        assert_eq!(result.rows.len(), 4, "2 rates × 2 hosts in quick mode");
        let mut faulted = 0;
        for row in &result.rows {
            let m = row.get("host_m").and_then(Value::as_u64).unwrap();
            let m_surv = row.get("m_surviving").and_then(Value::as_u64).unwrap();
            let k = row.get("k").and_then(Value::as_f64).unwrap();
            let bound = row.get("k_bound").and_then(Value::as_f64).unwrap();
            assert!(m_surv <= m && m_surv > 0);
            assert!(k >= bound, "k = {k} below bound {bound}");
            let rate = row.get("fault_rate").and_then(Value::as_f64).unwrap();
            if rate > 0.0 {
                faulted += 1;
                assert!(m_surv < m, "crashes at rate {rate} must kill someone");
            } else {
                assert_eq!(m_surv, m);
                assert_eq!(row.get("dropped").and_then(Value::as_u64).unwrap(), 0);
            }
        }
        assert_eq!(faulted, 2);
    }
}
