//! Consistent-hash ring for fingerprint-affine shard routing.
//!
//! The router keys every simulate request by the same
//! [`workload_fingerprint`](unet_core::workload_fingerprint) the backends
//! use as their [`SharedPlanCache`](unet_core::SharedPlanCache) key, then
//! asks the ring which shard owns that fingerprint. Affinity is the whole
//! point: a fingerprint always lands on the same shard, so the shard's plan
//! cache sees every repeat and the single-flight coalescing the batching
//! executors do keeps working after scale-out.
//!
//! The ring is the classic virtual-node construction: each shard owns
//! [`VNODES`] points on a `u64` circle (FNV-1a of `(shard, replica)`), a
//! key is owned by the first point clockwise from its hash, and
//! [`successors`](Ring::successors) walks the circle to give the failover
//! order. Removing one shard therefore remaps *only* the keys that shard
//! owned — every other fingerprint keeps its home, which is what keeps the
//! surviving caches warm through a backend death.

/// Virtual nodes per shard. 64 points keeps the max/min key-share ratio
/// of a small ring within a few tens of percent, which is all the affinity
/// argument needs (perfect balance is the load generator's job — see
/// `LoadgenConfig::shards`).
pub const VNODES: usize = 64;

/// FNV-1a over the bytes of `(shard, replica)` — the ring-point hash.
fn point_hash(shard: usize, replica: usize) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in [shard as u64, replica as u64] {
        for byte in v.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(PRIME);
        }
    }
    h
}

/// A consistent-hash ring over `shards` numbered `0..n`.
///
/// The ring itself is static — membership changes are expressed by the
/// caller skipping unhealthy shards while walking
/// [`successors`](Ring::successors), exactly how the router's failover
/// works. That keeps the mapping for healthy shards bit-stable across
/// ejections and reinstatements.
#[derive(Debug, Clone)]
pub struct Ring {
    /// `(point, shard)` sorted by point.
    points: Vec<(u64, usize)>,
    shards: usize,
}

impl Ring {
    /// Build the ring for `shards` shards (at least one).
    pub fn new(shards: usize) -> Ring {
        let shards = shards.max(1);
        let mut points: Vec<(u64, usize)> =
            (0..shards).flat_map(|s| (0..VNODES).map(move |r| (point_hash(s, r), s))).collect();
        points.sort_unstable();
        Ring { points, shards }
    }

    /// Number of shards on the ring.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The home shard of a fingerprint: the owner of the first ring point
    /// clockwise from `fingerprint`.
    pub fn shard_of(&self, fingerprint: u64) -> usize {
        let idx = self.points.partition_point(|&(p, _)| p < fingerprint);
        self.points[idx % self.points.len()].1
    }

    /// The failover order for a fingerprint: every shard exactly once,
    /// starting at the home shard and continuing clockwise around the
    /// ring. The router tries these in order, skipping ejected backends,
    /// so a dead home shard's keys spill onto its ring successor and
    /// nowhere else.
    pub fn successors(&self, fingerprint: u64) -> Vec<usize> {
        let start = self.points.partition_point(|&(p, _)| p < fingerprint);
        let mut order = Vec::with_capacity(self.shards);
        let mut seen = vec![false; self.shards];
        for i in 0..self.points.len() {
            let shard = self.points[(start + i) % self.points.len()].1;
            if !seen[shard] {
                seen[shard] = true;
                order.push(shard);
                if order.len() == self.shards {
                    break;
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_deterministic_and_covers_all_shards() {
        let ring = Ring::new(4);
        assert_eq!(ring.shards(), 4);
        for fp in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
            assert_eq!(ring.shard_of(fp), Ring::new(4).shard_of(fp), "stable mapping");
            let order = ring.successors(fp);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3], "failover order covers every shard once");
            assert_eq!(order[0], ring.shard_of(fp), "failover starts at the home shard");
        }
    }

    #[test]
    fn distribution_touches_every_shard() {
        let ring = Ring::new(4);
        let mut counts = [0usize; 4];
        for k in 0..4096u64 {
            counts[ring.shard_of(k.wrapping_mul(0x9E37_79B9_7F4A_7C15))] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            assert!(c > 0, "shard {s} owns no keys: {counts:?}");
            // Virtual nodes keep the share within a loose band of fair.
            assert!(c * 4 > 4096 / 4, "shard {s} owns under a quarter-share: {counts:?}");
        }
    }

    #[test]
    fn removing_a_shard_only_remaps_its_own_keys() {
        let ring = Ring::new(4);
        for k in 0..2048u64 {
            let fp = k.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5EED;
            let order = ring.successors(fp);
            let home = order[0];
            // "Shard 2 died": the first healthy shard in failover order.
            let alive = |s: usize| s != 2;
            let rerouted = *order.iter().find(|&&s| alive(s)).expect("3 shards remain");
            if home != 2 {
                assert_eq!(rerouted, home, "keys of healthy shards never move");
            } else {
                assert_ne!(rerouted, 2, "dead shard's keys spill to a successor");
            }
        }
    }

    #[test]
    fn single_shard_ring_routes_everything_home() {
        let ring = Ring::new(1);
        assert_eq!(ring.shard_of(42), 0);
        assert_eq!(ring.successors(42), vec![0]);
        // Zero clamps to one rather than panicking.
        assert_eq!(Ring::new(0).shards(), 1);
    }
}
