//! Synchronous store-and-forward packet routing.
//!
//! The engine enforces exactly the communication discipline of the paper's
//! network model (Section 2: "each processor is allowed to communicate with
//! at most one of its neighboring processors during a single time step"):
//! per step every node transmits at most one packet to one neighbour and
//! accepts at most one incoming packet. Everything else (path choice, queue
//! discipline) is pluggable, so the same engine measures `route_M(h)` for
//! greedy, randomized (Valiant), and offline (Beneš/Waksman) strategies.

use rand::Rng;
use unet_obs::{edge_key, NoopRecorder, Recorder};
use unet_topology::{Graph, Node};

/// One packet of an `h–h` routing problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Index into the problem's packet list.
    pub id: u32,
    /// Origin node.
    pub src: Node,
    /// Destination node.
    pub dst: Node,
    /// The full path this packet will follow (`path[0] = src`, last = dst).
    pub path: Vec<Node>,
}

/// Typed routing failure. Routing never panics on bad topology: a host that
/// cannot connect a packet's endpoints (disconnected generator input, or a
/// fault-partitioned surviving subnetwork) surfaces here instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteError {
    /// No path exists from `src` to `dst` in the (possibly faulted) host.
    Unreachable {
        /// Origin node.
        src: Node,
        /// Destination node.
        dst: Node,
    },
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteError::Unreachable { src, dst } => {
                write!(f, "no path from {src} to {dst}: host is partitioned between them")
            }
        }
    }
}

impl std::error::Error for RouteError {}

/// Chooses a path for each packet before routing starts (oblivious or
/// offline routing). Randomized selectors draw from the provided RNG.
pub trait PathSelector {
    /// A walk from `src` to `dst` along edges of `g` (consecutive entries
    /// must be neighbours; `path[0] = src`, `path.last() = dst`), or
    /// [`RouteError::Unreachable`] when no such walk exists.
    fn path<R: Rng>(
        &self,
        g: &Graph,
        src: Node,
        dst: Node,
        rng: &mut R,
    ) -> Result<Vec<Node>, RouteError>;
}

/// Shortest-path (BFS) selector — works on any host; reports
/// [`RouteError::Unreachable`] across disconnected components. Deterministic.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShortestPath;

impl PathSelector for ShortestPath {
    fn path<R: Rng>(
        &self,
        g: &Graph,
        src: Node,
        dst: Node,
        _rng: &mut R,
    ) -> Result<Vec<Node>, RouteError> {
        bfs_path(g, src, dst).ok_or(RouteError::Unreachable { src, dst })
    }
}

/// BFS path between two nodes, if any.
pub fn bfs_path(g: &Graph, src: Node, dst: Node) -> Option<Vec<Node>> {
    if src == dst {
        return Some(vec![src]);
    }
    let mut prev = vec![u32::MAX; g.n()];
    let mut queue = std::collections::VecDeque::new();
    prev[src as usize] = src;
    queue.push_back(src);
    while let Some(v) = queue.pop_front() {
        for &w in g.neighbors(v) {
            if prev[w as usize] == u32::MAX {
                prev[w as usize] = v;
                if w == dst {
                    let mut path = vec![dst];
                    let mut cur = dst;
                    while cur != src {
                        cur = prev[cur as usize];
                        path.push(cur);
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(w);
            }
        }
    }
    None
}

/// Queue discipline: which waiting packet a node offers first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Discipline {
    /// Farthest-to-go first (the classic choice for greedy mesh routing).
    #[default]
    FarthestFirst,
    /// First come, first served (by packet id as a proxy for arrival).
    Fifo,
}

/// One recorded transfer: at `step`, `from` sent packet `packet_id` to `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    /// Host step (0-based).
    pub step: u32,
    /// Sender.
    pub from: Node,
    /// Receiver.
    pub to: Node,
    /// Packet index.
    pub packet_id: u32,
}

/// Result of a routing run.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Number of synchronous steps until the last delivery.
    pub steps: u32,
    /// Delivery step per packet (same order as the input packets).
    pub delivered_at: Vec<u32>,
    /// Every transfer, in step order (the raw material for converting a
    /// routing run into pebble-protocol send/receive pairs).
    pub transfers: Vec<Transfer>,
    /// Maximum queue length observed at any node.
    pub max_queue: usize,
}

impl Outcome {
    /// Transfers grouped by step (each inner slice is one synchronous step).
    pub fn transfers_by_step(&self) -> Vec<&[Transfer]> {
        let mut out = Vec::new();
        let mut lo = 0;
        for s in 0..self.steps {
            let hi = self.transfers[lo..]
                .iter()
                .position(|t| t.step != s)
                .map(|p| lo + p)
                .unwrap_or(self.transfers.len());
            out.push(&self.transfers[lo..hi]);
            lo = hi;
        }
        out
    }
}

/// Route `packets` (with pre-selected paths) on `g` under the
/// one-send/one-receive-per-node-per-step discipline. Returns `None` if the
/// step limit is exceeded (which, for finite paths, can only happen when the
/// limit is too small — the engine guarantees progress every step).
///
/// Uninstrumented entry point; identical to
/// [`route_recorded`] with a [`NoopRecorder`] (same monomorphization, so
/// instrumentation costs nothing here).
pub fn route(
    g: &Graph,
    packets: &[Packet],
    discipline: Discipline,
    max_steps: u32,
) -> Option<Outcome> {
    route_recorded(g, packets, discipline, max_steps, &mut NoopRecorder)
}

/// [`route`] with instrumentation. Emits, per synchronous round, the number
/// of packets still in flight and the occupancy of every non-empty queue;
/// per run, the hop count of each delivered packet and totals for steps and
/// transfers — all under the `route` span:
///
/// * span `route` — the whole run (closed even on step-limit failure);
/// * histogram `route.packets_in_flight` — undelivered packets, one sample
///   per round;
/// * histogram `route.queue_occupancy` — length of each non-empty queue,
///   sampled every round;
/// * histogram `route.hops` — per delivered packet, `path.len() − 1`;
/// * counters `route.steps`, `route.transfers`, `route.packets`.
pub fn route_recorded<REC: Recorder + ?Sized>(
    g: &Graph,
    packets: &[Packet],
    discipline: Discipline,
    max_steps: u32,
    rec: &mut REC,
) -> Option<Outcome> {
    let n = g.n();
    // Validate paths.
    for p in packets {
        assert!(!p.path.is_empty(), "packet {} has empty path", p.id);
        assert_eq!(p.path[0], p.src);
        assert_eq!(*p.path.last().unwrap(), p.dst);
        for w in p.path.windows(2) {
            assert!(
                w[0] == w[1] || g.has_edge(w[0], w[1]),
                "packet {} path uses non-edge ({}, {})",
                p.id,
                w[0],
                w[1]
            );
        }
    }
    // progress[i]: index into packets[i].path of the current position.
    let mut progress: Vec<usize> = packets.iter().map(|_| 0usize).collect();
    let mut delivered_at = vec![u32::MAX; packets.len()];
    // queue[v]: packet ids currently stored at v and not yet delivered.
    let mut queue: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut undelivered = 0usize;
    for (i, p) in packets.iter().enumerate() {
        if p.path.len() == 1 {
            delivered_at[i] = 0;
        } else {
            queue[p.src as usize].push(i as u32);
            undelivered += 1;
        }
    }
    let mut transfers = Vec::new();
    let mut max_queue = queue.iter().map(|q| q.len()).max().unwrap_or(0);
    let remaining =
        |i: u32, progress: &[usize]| packets[i as usize].path.len() - 1 - progress[i as usize];

    rec.span_start("route");
    let mut step = 0u32;
    while undelivered > 0 {
        if step >= max_steps {
            rec.span_end("route");
            return None;
        }
        rec.histogram("route.packets_in_flight", undelivered as u64);
        // Queue telemetry covers the state *entering* this round, so the
        // initial backlog is sampled too and the histogram max agrees
        // exactly with the Outcome's `max_queue`.
        for (v, q) in queue.iter().enumerate() {
            if !q.is_empty() {
                rec.histogram("route.queue_occupancy", q.len() as u64);
                rec.sample("route.queue_depth", step as u64, v as u64, q.len() as u64);
            }
        }
        // Phase 1: each non-empty node proposes its best packet.
        // proposals[to] = (priority, from, packet)
        let mut best_at_receiver: Vec<Option<(usize, Node, u32)>> = vec![None; n];
        for (v, qv) in queue.iter().enumerate() {
            if qv.is_empty() {
                continue;
            }
            // Pick the packet to offer.
            let &pid = match discipline {
                Discipline::FarthestFirst => qv
                    .iter()
                    .max_by_key(|&&i| (remaining(i, &progress), std::cmp::Reverse(i)))
                    .unwrap(),
                Discipline::Fifo => qv.iter().min().unwrap(),
            };
            let next = packets[pid as usize].path[progress[pid as usize] + 1];
            let prio = remaining(pid, &progress);
            let slot = &mut best_at_receiver[next as usize];
            let better = match slot {
                None => true,
                Some((p, _, old_pid)) => prio > *p || (prio == *p && pid < *old_pid),
            };
            if better {
                *slot = Some((prio, v as Node, pid));
            }
        }
        // Phase 2: winners move.
        let mut moved_any = false;
        for to in 0..n {
            if let Some((_, from, pid)) = best_at_receiver[to] {
                let q = &mut queue[from as usize];
                let pos = q.iter().position(|&x| x == pid).unwrap();
                q.swap_remove(pos);
                progress[pid as usize] += 1;
                transfers.push(Transfer { step, from, to: to as Node, packet_id: pid });
                rec.sample("route.edge_util", step as u64, edge_key(from, to as Node), 1);
                moved_any = true;
                if progress[pid as usize] + 1 == packets[pid as usize].path.len() {
                    delivered_at[pid as usize] = step + 1;
                    undelivered -= 1;
                } else {
                    queue[to].push(pid);
                }
            }
        }
        debug_assert!(moved_any, "engine must make progress every step");
        max_queue = max_queue.max(queue.iter().map(|q| q.len()).max().unwrap_or(0));
        step += 1;
    }
    rec.span_end("route");
    for p in packets {
        rec.histogram("route.hops", (p.path.len() - 1) as u64);
    }
    rec.counter("route.steps", step as u64);
    rec.counter("route.transfers", transfers.len() as u64);
    rec.counter("route.packets", packets.len() as u64);
    Some(Outcome { steps: step, delivered_at, transfers, max_queue })
}

/// Build packets from `(src, dst)` pairs using a path selector. Fails with
/// the selector's [`RouteError`] on the first pair it cannot connect.
pub fn make_packets<S: PathSelector, R: Rng>(
    g: &Graph,
    pairs: &[(Node, Node)],
    selector: &S,
    rng: &mut R,
) -> Result<Vec<Packet>, RouteError> {
    pairs
        .iter()
        .enumerate()
        .map(|(i, &(src, dst))| {
            Ok(Packet { id: i as u32, src, dst, path: selector.path(g, src, dst, rng)? })
        })
        .collect()
}

/// Convenience: route `(src, dst)` pairs with BFS paths and default
/// discipline. Returns [`RouteError::Unreachable`] on a partitioned host;
/// panics only on step-limit overflow (limit = generous bound, so never for
/// valid inputs).
pub fn route_simple(g: &Graph, pairs: &[(Node, Node)]) -> Result<Outcome, RouteError> {
    let mut rng = unet_topology::util::seeded_rng(0);
    let packets = make_packets(g, pairs, &ShortestPath, &mut rng)?;
    Ok(route(g, &packets, Discipline::FarthestFirst, generous_step_limit(&packets))
        .expect("generous limit"))
}

/// A step limit no valid run can exceed: sum of path lengths (each step
/// moves ≥ 1 packet forward) plus slack. Accumulated in u64 and saturated
/// so huge problem sets can't wrap u32 into a spuriously small limit.
pub fn generous_step_limit(packets: &[Packet]) -> u32 {
    step_limit_for_lengths(packets.iter().map(|p| p.path.len()))
}

fn step_limit_for_lengths(lens: impl Iterator<Item = usize>) -> u32 {
    let total: u64 = lens.map(|l| l as u64 + 1).sum();
    u32::try_from(total.saturating_add(64)).unwrap_or(u32::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use unet_topology::generators::{mesh, path, ring, torus};

    #[test]
    fn bfs_path_endpoints_and_length() {
        let g = mesh(4, 4);
        let p = bfs_path(&g, 0, 15).unwrap();
        assert_eq!(p[0], 0);
        assert_eq!(*p.last().unwrap(), 15);
        assert_eq!(p.len(), 7); // distance 6
        assert_eq!(bfs_path(&g, 3, 3).unwrap(), vec![3]);
    }

    #[test]
    fn bfs_path_disconnected_none() {
        let mut b = unet_topology::GraphBuilder::new(4);
        b.add_edge(0, 1);
        let g = b.build();
        assert!(bfs_path(&g, 0, 3).is_none());
    }

    #[test]
    fn partitioned_host_yields_typed_error() {
        // Two components: {0,1} and {2,3}. Routing across them must surface
        // RouteError::Unreachable, not panic.
        let mut b = unet_topology::GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(2, 3);
        let g = b.build();
        assert!(matches!(
            route_simple(&g, &[(0, 3)]),
            Err(RouteError::Unreachable { src: 0, dst: 3 })
        ));
        // Pairs within one component still route fine.
        let ok = route_simple(&g, &[(0, 1), (3, 2)]).unwrap();
        assert!(ok.delivered_at.iter().all(|&d| d != u32::MAX));
        // The error is displayable (typed, not a panic string).
        let msg = RouteError::Unreachable { src: 0, dst: 3 }.to_string();
        assert!(msg.contains("partitioned"));
    }

    #[test]
    fn single_packet_travels_path_length() {
        let g = path(5);
        let out = route_simple(&g, &[(0, 4)]).unwrap();
        assert_eq!(out.steps, 4);
        assert_eq!(out.delivered_at, vec![4]);
        assert_eq!(out.transfers.len(), 4);
    }

    #[test]
    fn self_packet_is_free() {
        let g = path(3);
        let out = route_simple(&g, &[(1, 1)]).unwrap();
        assert_eq!(out.steps, 0);
        assert_eq!(out.delivered_at, vec![0]);
    }

    #[test]
    fn contention_serializes_receives() {
        // Two packets into the same destination on a star-free path graph:
        // 0→1 and 2→1 can both deliver only one per step.
        let g = path(3);
        let out = route_simple(&g, &[(0, 1), (2, 1)]).unwrap();
        assert_eq!(out.steps, 2);
        let mut d = out.delivered_at.clone();
        d.sort_unstable();
        assert_eq!(d, vec![1, 2]);
    }

    #[test]
    fn transfers_respect_port_model() {
        // No node sends twice or receives twice in the same step.
        let g = torus(4, 4);
        let pairs: Vec<(Node, Node)> =
            (0..16).map(|i| (i as Node, ((i * 7 + 3) % 16) as Node)).collect();
        let out = route_simple(&g, &pairs).unwrap();
        for step_transfers in out.transfers_by_step() {
            let mut senders = std::collections::HashSet::new();
            let mut receivers = std::collections::HashSet::new();
            for t in step_transfers {
                assert!(senders.insert(t.from), "double send at step {}", t.step);
                assert!(receivers.insert(t.to), "double recv at step {}", t.step);
                assert!(g.has_edge(t.from, t.to));
            }
        }
    }

    #[test]
    fn all_packets_delivered_random_problem() {
        use rand::Rng;
        let g = torus(6, 6);
        let mut rng = unet_topology::util::seeded_rng(3);
        let pairs: Vec<(Node, Node)> =
            (0..72).map(|_| (rng.gen_range(0..36), rng.gen_range(0..36))).collect();
        let out = route_simple(&g, &pairs).unwrap();
        assert!(out.delivered_at.iter().all(|&d| d != u32::MAX));
        assert!(out.steps > 0);
        assert!(out.max_queue >= 1);
    }

    #[test]
    fn fifo_discipline_also_delivers() {
        let g = ring(8);
        let pairs: Vec<(Node, Node)> = (0..8).map(|i| (i as Node, ((i + 4) % 8) as Node)).collect();
        let mut rng = unet_topology::util::seeded_rng(0);
        let packets = make_packets(&g, &pairs, &ShortestPath, &mut rng).unwrap();
        let out = route(&g, &packets, Discipline::Fifo, 1000).unwrap();
        assert!(out.delivered_at.iter().all(|&d| d != u32::MAX));
    }

    #[test]
    fn step_limit_enforced() {
        let g = path(5);
        let mut rng = unet_topology::util::seeded_rng(0);
        let packets = make_packets(&g, &[(0, 4)], &ShortestPath, &mut rng).unwrap();
        assert!(route(&g, &packets, Discipline::Fifo, 2).is_none());
    }

    #[test]
    #[should_panic(expected = "non-edge")]
    fn invalid_path_rejected() {
        let g = path(4); // 0-1-2-3
        let pkt = Packet { id: 0, src: 0, dst: 3, path: vec![0, 3] };
        route(&g, &[pkt], Discipline::Fifo, 10);
    }

    #[test]
    fn recorded_route_matches_and_balances() {
        use unet_obs::InMemoryRecorder;
        let g = torus(4, 4);
        let pairs: Vec<(Node, Node)> =
            (0..16).map(|i| (i as Node, ((i * 5 + 1) % 16) as Node)).collect();
        let mut rng = unet_topology::util::seeded_rng(0);
        let packets = make_packets(&g, &pairs, &ShortestPath, &mut rng).unwrap();
        let plain = route(&g, &packets, Discipline::FarthestFirst, 1000).unwrap();
        let mut rec = InMemoryRecorder::new();
        let recorded =
            route_recorded(&g, &packets, Discipline::FarthestFirst, 1000, &mut rec).unwrap();
        // Instrumentation must not change the outcome.
        assert_eq!(plain.steps, recorded.steps);
        assert_eq!(plain.delivered_at, recorded.delivered_at);
        assert_eq!(plain.transfers, recorded.transfers);
        // Spans balanced; metrics consistent with the outcome.
        assert!(rec.open_spans().is_empty());
        assert_eq!(rec.counter_value("route.steps"), recorded.steps as u64);
        assert_eq!(rec.counter_value("route.transfers"), recorded.transfers.len() as u64);
        assert_eq!(rec.counter_value("route.packets"), packets.len() as u64);
        let hops = rec.histogram_data("route.hops").unwrap();
        assert_eq!(hops.count, packets.len() as u64);
        let flight = rec.histogram_data("route.packets_in_flight").unwrap();
        assert_eq!(flight.count, recorded.steps as u64); // one sample per round
        let occ = rec.histogram_data("route.queue_occupancy").unwrap();
        assert!(occ.max as usize <= recorded.max_queue);
    }

    #[test]
    fn recorded_route_step_limit_failure_closes_span() {
        use unet_obs::InMemoryRecorder;
        let g = path(5);
        let mut rng = unet_topology::util::seeded_rng(0);
        let packets = make_packets(&g, &[(0, 4)], &ShortestPath, &mut rng).unwrap();
        let mut rec = InMemoryRecorder::new();
        assert!(route_recorded(&g, &packets, Discipline::Fifo, 2, &mut rec).is_none());
        assert!(rec.open_spans().is_empty(), "span must close on failure too");
    }

    #[test]
    fn generous_step_limit_saturates() {
        // Path lengths whose u32 sum would wrap; the limit must saturate to
        // u32::MAX instead of wrapping into a tiny bound.
        let huge = u32::MAX as usize / 2;
        assert_eq!(step_limit_for_lengths([huge, huge, huge].into_iter()), u32::MAX);
        // Small problems keep a tight limit.
        assert_eq!(step_limit_for_lengths([4usize, 4].into_iter()), 74);
    }

    #[test]
    fn lazy_path_segments_allowed() {
        // Paths may contain stationary repeats (used by offline schedules).
        let g = path(3);
        let pkt = Packet { id: 0, src: 0, dst: 2, path: vec![0, 0, 1, 2] };
        let out = route(&g, &[pkt], Discipline::Fifo, 10);
        // A stationary "hop" is a send-to-self, which the engine treats as a
        // real transfer to the same node — disallowed by has_edge, so the
        // path validation accepts (w[0] == w[1]) but the move is to itself…
        // it must still deliver.
        let out = out.expect("delivers");
        assert!(out.delivered_at[0] != u32::MAX);
    }
}
