//! Minimal dependency-free JSON: a [`Value`] tree, a writer, and a
//! recursive-descent parser.
//!
//! Integers are kept exact: numbers without a fraction/exponent parse into
//! [`Value::UInt`]/[`Value::Int`] (so `u64::MAX` round-trips bit-for-bit,
//! which the histogram schema relies on); everything else is [`Value::Float`].
//! This is deliberately *not* a general-purpose JSON library — it supports
//! exactly what the trace schema needs (no `\uXXXX` escapes beyond BMP
//! pass-through, no duplicate-key detection).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Non-negative integer literal.
    UInt(u64),
    /// Negative integer literal.
    Int(i64),
    /// Number with fraction or exponent.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object, in insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String content, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean content, if a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Value as `u64` (exact integers only).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(u) => Some(u),
            Value::Int(i) => u64::try_from(i).ok(),
            _ => None,
        }
    }

    /// Value as `f64` (any number).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::UInt(u) => Some(u as f64),
            Value::Int(i) => Some(i as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// Array elements, if an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Serialize to compact JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Value::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Value::Float(f) => {
                if f.is_finite() {
                    // Guarantee a parseable float literal (keep the dot or
                    // exponent so it round-trips as Float).
                    let s = format!("{f}");
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    // JSON has no Inf/NaN; null is the least-wrong encoding.
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse one JSON document; trailing whitespace is allowed, trailing
/// content is an error.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos)? {
                    Value::Str(s) => s,
                    other => return Err(format!("object key must be a string, got {other:?}")),
                };
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let val = parse_value(b, pos)?;
                fields.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => parse_string(b, pos).map(Value::Str),
        Some(b't') => expect_lit(b, pos, "true").map(|_| Value::Bool(true)),
        Some(b'f') => expect_lit(b, pos, "false").map(|_| Value::Bool(false)),
        Some(b'n') => expect_lit(b, pos, "null").map(|_| Value::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn expect_lit(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|e| format!("bad \\u escape: {e}"))?;
                        out.push(char::from_u32(code).ok_or("surrogate \\u escape unsupported")?);
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is &str, so this is safe).
                let s = &b[*pos..];
                let ch_len = match s[0] {
                    c if c < 0x80 => 1,
                    c if c < 0xE0 => 2,
                    c if c < 0xF0 => 3,
                    _ => 4,
                };
                out.push_str(std::str::from_utf8(&s[..ch_len]).map_err(|e| e.to_string())?);
                *pos += ch_len;
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    if text.is_empty() || text == "-" {
        return Err(format!("expected number at byte {start}"));
    }
    if !is_float {
        if text.starts_with('-') {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        } else if let Ok(u) = text.parse::<u64>() {
            return Ok(Value::UInt(u));
        }
        // Integer literal too large for u64/i64: fall through to float.
    }
    text.parse::<f64>().map(Value::Float).map_err(|e| format!("number {text}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for (src, val) in [
            ("null", Value::Null),
            ("true", Value::Bool(true)),
            ("false", Value::Bool(false)),
            ("0", Value::UInt(0)),
            ("18446744073709551615", Value::UInt(u64::MAX)),
            ("-42", Value::Int(-42)),
            ("1.5", Value::Float(1.5)),
            ("\"hi\"", Value::Str("hi".into())),
        ] {
            assert_eq!(parse(src).unwrap(), val, "{src}");
            assert_eq!(parse(&val.to_json()).unwrap(), val, "{src} re-parse");
        }
    }

    #[test]
    fn u64_max_exact() {
        let v = Value::UInt(u64::MAX);
        assert_eq!(v.to_json(), "18446744073709551615");
        assert_eq!(parse(&v.to_json()).unwrap().as_u64(), Some(u64::MAX));
    }

    #[test]
    fn float_always_reparses_as_float() {
        let v = Value::Float(2.0);
        assert_eq!(v.to_json(), "2.0");
        assert_eq!(parse("2.0").unwrap(), Value::Float(2.0));
        assert_eq!(parse("1e3").unwrap(), Value::Float(1000.0));
    }

    #[test]
    fn nested_structure_round_trips() {
        let v = Value::Obj(vec![
            ("name".into(), Value::Str("route".into())),
            ("vals".into(), Value::Arr(vec![Value::UInt(1), Value::Int(-2), Value::Float(0.5)])),
            ("nested".into(), Value::Obj(vec![("ok".into(), Value::Bool(true))])),
            ("none".into(), Value::Null),
        ]);
        let text = v.to_json();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn string_escapes() {
        let v = Value::Str("a\"b\\c\nd\te\u{1}f λ".into());
        let text = v.to_json();
        assert_eq!(parse(&text).unwrap(), v);
        assert_eq!(parse("\"\\u0041\"").unwrap(), Value::Str("A".into()));
    }

    #[test]
    fn errors_reported() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn accessors() {
        let v = parse("{\"a\": 3, \"b\": [1, 2], \"c\": \"x\", \"d\": -1.5}").unwrap();
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("b").and_then(Value::as_arr).map(|a| a.len()), Some(2));
        assert_eq!(v.get("c").and_then(Value::as_str), Some("x"));
        assert_eq!(v.get("d").and_then(Value::as_f64), Some(-1.5));
        assert_eq!(v.get("missing"), None);
    }
}
