//! E4 — Lemma 3.12: averaging on real protocols.
//!
//! Regenerates the Z_S / representative-root certificate table for a
//! certified simulation of a `U[G₀]` guest, then times the analysis.

use criterion::{criterion_group, criterion_main, Criterion};
use unet_bench::lowerbound_fixture;
use unet_lowerbound::averaging::analyze;

fn regenerate_table() {
    let f = lowerbound_fixture();
    let a = analyze(&f.trace, &f.g0);
    println!("\n=== E4: Lemma 3.12 averaging (n = 144, m = 16, T = 8) ===");
    println!(
        "tree depth D = {}, Z_S = {:?} (|Z_S| large enough: {})",
        a.depth, a.z_s, a.z_s_large_enough
    );
    println!(
        "{:>4} {:>10} {:>12} {:>10} {:>12}",
        "t0", "Σq(roots)", "bound(4/s²)", "Σw(roots)", "bound(4/s²)"
    );
    for c in &a.certificates {
        println!(
            "{:>4} {:>10} {:>12.1} {:>10} {:>12.1}",
            c.t0, c.sum_root_q, c.bound_root_q, c.sum_root_w, c.bound_root_w
        );
    }
    println!(
        "work bound: Σq = {} ≤ m·T' = {}  (all bounds hold: {})",
        a.total_weight,
        a.work_bound,
        a.all_bounds_hold()
    );
}

fn bench(c: &mut Criterion) {
    regenerate_table();
    let f = lowerbound_fixture();
    let mut group = c.benchmark_group("e4_averaging");
    group.sample_size(20);
    group.bench_function("analyze_full", |b| b.iter(|| analyze(&f.trace, &f.g0)));
    let canon = unet_lowerbound::averaging::canonical_trees(f.g0.block_side);
    group.bench_function("canonical_weight", |b| {
        b.iter(|| canon.weight(&f.trace, &f.g0.blocks[0], 0, 6))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
