//! E1 — Theorem 2.1 + butterfly corollary (upper bound).
//!
//! Regenerates the size/slowdown series: fixed guest size `n`, butterfly
//! hosts of growing size `m ≤ n`; reports measured slowdown against the load
//! bound `n/m` and the `(n/m)·log m` shape. The paper's claim: the measured
//! inefficiency `k = s·m/n` grows `Θ(log m)` (affine in `log m`), neither
//! beating the Theorem 3.1 lower bound nor losing the Theorem 2.1 upper
//! shape. Then times one simulation step as the kernel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use unet_bench::{butterfly_slowdown, standard_guest};
use unet_core::prelude::bounds;

fn regenerate_table() {
    let n = 1024;
    let steps = 3;
    let (guest, comp) = standard_guest(n, 0xE1);
    println!("\n=== E1: upper-bound trade-off (guest n = {n}, T = {steps}) ===");
    println!("{:>5} {:>8} {:>10} {:>8} {:>10}", "m", "load", "measured", "k=s*m/n", "upper");
    let mut prev_k: Option<f64> = None;
    for dim in 2..=5usize {
        let m = (dim + 1) << dim;
        let s = butterfly_slowdown(&guest, &comp, dim, steps, 0xE100 + dim as u64);
        let k = s * m as f64 / n as f64;
        let delta = prev_k.map(|p| k - p);
        println!(
            "{m:>5} {:>8.1} {s:>10.1} {k:>8.1} {:>10.1}   Δk = {}",
            bounds::load_bound(n, m),
            bounds::upper_bound_butterfly(n, m),
            delta.map_or("-".into(), |d| format!("{d:.1}")),
        );
        prev_k = Some(k);
    }
    println!("shape check: Δk per butterfly dimension ≈ constant ⇒ k = Θ(log m).");
}

fn bench(c: &mut Criterion) {
    regenerate_table();
    let mut group = c.benchmark_group("e1_upper_bound");
    group.sample_size(10);
    for dim in [2usize, 3, 4] {
        let (guest, comp) = standard_guest(512, 0xE1);
        group.bench_with_input(BenchmarkId::new("simulate", dim), &dim, |b, &dim| {
            b.iter(|| butterfly_slowdown(&guest, &comp, dim, 2, 0xE100 + dim as u64));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
