//! E8 — good vs bad universal hosts at equal size.
//!
//! Regenerates the host-comparison table (Section 2's thesis: networks with
//! good `h–h` routing make good universal hosts; meshes pay their `√m`
//! diameter), then times the per-host simulation kernels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use unet_bench::{rng, standard_guest};
use unet_core::prelude::*;
use unet_core::routers::Router;
use unet_topology::generators::{
    butterfly, kautz, mesh, mesh_of_trees, multibutterfly, random_hamiltonian_union, ring, torus,
};
use unet_topology::Graph;

fn measure(
    guest: &Graph,
    comp: &GuestComputation,
    host: &Graph,
    router: &dyn Router,
    steps: u32,
) -> (f64, f64) {
    let run = Simulation::builder()
        .guest(comp)
        .host(host)
        .embedding(Embedding::block(guest.n(), host.n()))
        .router(router)
        .steps(steps)
        .seed(0xE8)
        .run()
        .expect("host configuration is valid");
    let v = verify_run(comp, host, &run, steps).expect("certifies");
    (v.metrics.slowdown, v.metrics.inefficiency)
}

fn regenerate_table() {
    let n = 512;
    let steps = 2;
    let (guest, comp) = standard_guest(n, 0xE8);
    println!("\n=== E8: host zoo (guest n = {n}, m ≈ 80) ===");
    println!("{:>22} {:>5} {:>10} {:>8}", "host", "m", "slowdown", "k");
    let bf = butterfly(4);
    let r1 = presets::butterfly_valiant(4);
    let (s, k) = measure(&guest, &comp, &bf, &r1, steps);
    println!("{:>22} {:>5} {s:>10.1} {k:>8.1}", "butterfly+valiant", bf.n());
    let t = torus(9, 9);
    let r2 = presets::torus_xy(9, 9);
    let (s, k) = measure(&guest, &comp, &t, &r2, steps);
    println!("{:>22} {:>5} {s:>10.1} {k:>8.1}", "torus+xy", t.n());
    let me = mesh(9, 9);
    let r3 = presets::mesh_xy(9, 9);
    let (s, k) = measure(&guest, &comp, &me, &r3, steps);
    println!("{:>22} {:>5} {s:>10.1} {k:>8.1}", "mesh+xy", me.n());
    let rg = ring(80);
    let r4 = presets::bfs();
    let (s, k) = measure(&guest, &comp, &rg, &r4, steps);
    println!("{:>22} {:>5} {s:>10.1} {k:>8.1}", "ring+bfs", rg.n());
    let mut rr = rng();
    let ex = random_hamiltonian_union(80, 2, &mut rr);
    let (s, k) = measure(&guest, &comp, &ex, &r4, steps);
    println!("{:>22} {:>5} {s:>10.1} {k:>8.1}", "expander+bfs", ex.n());
    // Reference-list exotics ([1], [17], Kautz).
    let mot = mesh_of_trees(8); // 176 nodes
    let (s, k) = measure(&guest, &comp, &mot, &r4, steps);
    println!("{:>22} {:>5} {s:>10.1} {k:>8.1}", "mesh-of-trees+bfs", mot.n());
    let mb = multibutterfly(4, &mut rr); // 80 nodes
    let (s, k) = measure(&guest, &comp, &mb, &r4, steps);
    println!("{:>22} {:>5} {s:>10.1} {k:>8.1}", "multibutterfly+bfs", mb.n());
    let kz = kautz(3, 3); // 36 nodes — smaller, for reference
    let (s, k) = measure(&guest, &comp, &kz, &r4, steps);
    println!("{:>22} {:>5} {s:>10.1} {k:>8.1}", "kautz+bfs", kz.n());
    println!("expected order: expander/multibutterfly ≲ torus < mesh ≪ ring (diameter effect).");
}

fn bench(c: &mut Criterion) {
    regenerate_table();
    let (guest, comp) = standard_guest(256, 0xE8);
    let mut group = c.benchmark_group("e8_hosts");
    group.sample_size(10);
    let hosts: Vec<(&str, Graph)> =
        vec![("butterfly", butterfly(3)), ("torus", torus(6, 6)), ("mesh", mesh(6, 6))];
    for (name, host) in hosts {
        let m = host.n();
        group.bench_with_input(BenchmarkId::new("simulate", name), &m, |b, _| {
            let router = presets::bfs();
            b.iter(|| {
                Simulation::builder()
                    .guest(&comp)
                    .host(&host)
                    .embedding(Embedding::block(256, m))
                    .router(&router)
                    .steps(2)
                    .seed(0xE8)
                    .run()
                    .expect("host configuration is valid")
                    .protocol
                    .host_steps()
            });
        });
    }
    let _ = &guest;
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
