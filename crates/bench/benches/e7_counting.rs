//! E7 — the counting argument's internals.
//!
//! Regenerates the `log₂|U[G₀]|` vs `log₂ D(k)` curves and the crossover
//! `k`, plus the measured fragment description length of a real protocol
//! against the `r·n·k` budget, then times the counting kernels.

use criterion::{criterion_group, criterion_main, Criterion};
use unet_bench::lowerbound_fixture;
use unet_lowerbound::averaging::analyze;
use unet_lowerbound::counting::{crossover_k, log2_d_k, log2_u_g0};
use unet_lowerbound::fragments::fragment_costs;
use unet_lowerbound::CountingParams;
use unet_topology::enumeration::{count_regular_exact, log2_num_regular};

fn regenerate_table() {
    let n = 1u64 << 12;
    let m = 1u64 << 10;
    let p = CountingParams::shape(0.125);
    println!("\n=== E7: counting internals (n = {n}, m = {m}) ===");
    let bc = log2_u_g0(n, 16);
    let target = 2.0 * n as f64 * (n as f64).log2() - p.delta * n as f64;
    println!("log2 |U[G0]|: Bender–Canfield {bc:.0} bits, paper form (shared δ) {target:.0} bits");
    println!("{:>6} {:>14} {:>10}", "k", "log2 D(k)", "≥ |U[G0]|?");
    for k in [0.5, 1.0, 2.0, 4.0, 8.0] {
        let d = log2_d_k(n, m, k, &p);
        println!("{k:>6.1} {d:>14.0} {:>10}", d >= target);
    }
    println!("crossover k = {:.3}", crossover_k(n, m, &p));

    // Formula validation against exact enumeration.
    println!("\nexact vs Bender–Canfield (labelled d-regular counts):");
    for (nn, d) in [(6usize, 2usize), (6, 3), (8, 3)] {
        let exact = count_regular_exact(nn, d);
        let bc = log2_num_regular(nn as u64, d as u64);
        println!(
            "  n = {nn}, d = {d}: exact = {exact} (log2 {:.2}), BC = {bc:.2}",
            (exact as f64).log2()
        );
    }

    // Measured fragment description length on a live protocol.
    let f = lowerbound_fixture();
    let a = analyze(&f.trace, &f.g0);
    let costs = fragment_costs(&f.trace, &f.g0, &a, f.host.max_degree());
    if let Some(c0) = costs.first() {
        println!(
            "\nmeasured fragment encoding at t0 = {}: {:.0} bits (budget r·n·k = {:.0})",
            c0.t0,
            c0.total(),
            c0.budget_bits
        );
    }
}

fn bench(c: &mut Criterion) {
    regenerate_table();
    let mut group = c.benchmark_group("e7_counting");
    let p = CountingParams::shape(0.125);
    group.bench_function("crossover_k", |b| b.iter(|| crossover_k(1 << 12, 1 << 10, &p)));
    group.bench_function("exact_count_8_3", |b| b.iter(|| count_regular_exact(8, 3)));
    let f = lowerbound_fixture();
    let a = analyze(&f.trace, &f.g0);
    group.sample_size(20);
    group.bench_function("fragment_costs", |b| b.iter(|| fragment_costs(&f.trace, &f.g0, &a, 4)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
