//! Routing on the butterfly: greedy bit-fixing and Valiant's randomized
//! two-phase scheme.
//!
//! The butterfly is the paper's canonical good host: its `h–h` routing time
//! is `O(h·log m)` (offline — Section 2 cites Waksman; online — Valiant's
//! trick gives the same bound w.h.p.), so by Theorem 2.1 a size-`m` butterfly
//! is `n`-universal with slowdown `O((n/m)·log m)`.

use crate::packet::{PathSelector, RouteError};
use rand::Rng;
use unet_topology::generators::butterfly::{bf_coords, bf_index};
use unet_topology::{Graph, Node};

/// Greedy bit-fixing selector on a `dim`-dimensional butterfly
/// (`(dim+1)·2^dim` nodes): ascend to level 0 keeping the row, then descend
/// fixing one destination-row bit per level (a cross edge exactly where the
/// rows differ), then continue straight to the destination level.
#[derive(Debug, Clone, Copy)]
pub struct GreedyButterfly {
    /// Butterfly dimension.
    pub dim: usize,
}

impl GreedyButterfly {
    /// Deterministic bit-fixing walk between arbitrary butterfly nodes,
    /// using the **minimal level span**: ascend only to the lowest level
    /// whose cross edges are needed, descend fixing the differing row bits,
    /// then move straight to the destination level. (Always detouring
    /// through level 0 — the naive walk — funnels every packet through the
    /// `2^dim` level-0 nodes and destroys the `O(h·log m)` routing shape.)
    pub fn walk(&self, src: Node, dst: Node) -> Vec<Node> {
        let d = self.dim;
        let (sl, sr) = bf_coords(d, src);
        let (dl, dr) = bf_coords(d, dst);
        let diff = sr ^ dr;
        // Bit b is fixed on the edge between levels b and b+1, so the walk
        // must dip down to level `lo = min(sl, dl, lowest set bit of diff)`
        // and reach at least `hi = max(sl?, dl, highest set bit + 1)`.
        let lo =
            if diff == 0 { sl.min(dl) } else { sl.min(dl).min(diff.trailing_zeros() as usize) };
        let hi = if diff == 0 {
            dl.max(lo)
        } else {
            dl.max(usize::BITS as usize - 1 - diff.leading_zeros() as usize + 1)
        };
        let mut path = vec![src];
        // Ascend straight to `lo` on the source row.
        let mut level = sl;
        while level > lo {
            level -= 1;
            path.push(bf_index(d, level, sr));
        }
        // Descend to `hi`, fixing bit ℓ on the edge (ℓ, ℓ+1).
        let mut row = sr;
        while level < hi {
            let bit = 1usize << level;
            if (row ^ dr) & bit != 0 {
                row ^= bit;
            }
            level += 1;
            path.push(bf_index(d, level, row));
        }
        debug_assert_eq!(row, dr);
        // Straight to the destination level (hi ≥ dl, so ascend).
        while level > dl {
            level -= 1;
            path.push(bf_index(d, level, row));
        }
        path
    }
}

impl PathSelector for GreedyButterfly {
    fn path<R: Rng>(
        &self,
        _g: &Graph,
        src: Node,
        dst: Node,
        _rng: &mut R,
    ) -> Result<Vec<Node>, RouteError> {
        Ok(self.walk(src, dst))
    }
}

/// Valiant's two-phase randomized selector: route to a uniformly random
/// intermediate row first, then to the destination. Converts any permutation
/// into two random-destination problems, defeating adversarial patterns like
/// bit reversal w.h.p.
#[derive(Debug, Clone, Copy)]
pub struct ValiantButterfly {
    /// Butterfly dimension.
    pub dim: usize,
}

impl PathSelector for ValiantButterfly {
    fn path<R: Rng>(
        &self,
        _g: &Graph,
        src: Node,
        dst: Node,
        rng: &mut R,
    ) -> Result<Vec<Node>, RouteError> {
        let d = self.dim;
        let greedy = GreedyButterfly { dim: d };
        // Uniformly random intermediate node (level *and* row — pinning the
        // level would recreate a single-level bottleneck).
        let mid_row = rng.gen_range(0..(1usize << d));
        let mid_level = rng.gen_range(0..=d);
        let mid = bf_index(d, mid_level, mid_row);
        let mut first = greedy.walk(src, mid);
        let second = greedy.walk(mid, dst);
        first.extend_from_slice(&second[1..]);
        Ok(first)
    }
}

/// Routing on the **wrapped** butterfly (`dim·2^dim` nodes, 4-regular): walk
/// the levels cyclically, fixing row bit `ℓ` whenever the walk crosses the
/// `(ℓ, ℓ+1 mod dim)` stage; at most one full loop (`dim` steps) fixes every
/// bit, plus up to `dim − 1` further steps to park at the destination level
/// — paths of length ≤ `2·dim − 1`.
#[derive(Debug, Clone, Copy)]
pub struct GreedyWrappedButterfly {
    /// Wrapped-butterfly dimension.
    pub dim: usize,
}

impl GreedyWrappedButterfly {
    /// Deterministic cyclic bit-fixing walk.
    pub fn walk(&self, src: Node, dst: Node) -> Vec<Node> {
        let d = self.dim;
        let (sl, sr) = bf_coords(d, src);
        let (dl, dr) = bf_coords(d, dst);
        let mut path = vec![src];
        let mut level = sl;
        let mut row = sr;
        // Keep walking until the row is fixed and the level parked.
        let mut safety = 0;
        while row != dr || level != dl {
            safety += 1;
            debug_assert!(safety <= 2 * d + 2, "wrapped walk must terminate");
            let bit = 1usize << level;
            if (row ^ dr) & bit != 0 {
                row ^= bit; // cross edge on this stage
            }
            level = (level + 1) % d;
            path.push(bf_index(d, level, row));
        }
        path
    }
}

impl PathSelector for GreedyWrappedButterfly {
    fn path<R: Rng>(
        &self,
        _g: &Graph,
        src: Node,
        dst: Node,
        _rng: &mut R,
    ) -> Result<Vec<Node>, RouteError> {
        Ok(self.walk(src, dst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{make_packets, route, Discipline};
    use crate::problem::{bit_reversal, random_h_h};
    use unet_topology::generators::butterfly as bf;
    use unet_topology::util::seeded_rng;

    #[test]
    fn greedy_walk_is_valid_path() {
        let dim = 4;
        let g = bf::butterfly(dim);
        let sel = GreedyButterfly { dim };
        for (src, dst) in [(0u32, 79u32), (79, 0), (5, 5), (17, 62)] {
            let p = sel.walk(src, dst);
            assert_eq!(p[0], src);
            assert_eq!(*p.last().unwrap(), dst);
            for w in p.windows(2) {
                assert!(g.has_edge(w[0], w[1]), "hop {:?} invalid", w);
            }
            // Path length ≤ 3·dim.
            assert!(p.len() <= 3 * dim + 1);
        }
    }

    #[test]
    fn greedy_routes_random_h_h() {
        let dim = 4;
        let g = bf::butterfly(dim);
        let m = g.n();
        let sel = GreedyButterfly { dim };
        let mut rng = seeded_rng(7);
        let prob = random_h_h(m, 2, &mut rng);
        let packets = make_packets(&g, &prob.pairs, &sel, &mut rng).unwrap();
        let out = route(&g, &packets, Discipline::FarthestFirst, 100_000).unwrap();
        assert!(out.delivered_at.iter().all(|&d| d != u32::MAX));
    }

    #[test]
    fn valiant_beats_greedy_on_bit_reversal_congestion() {
        // Bit reversal on level-d rows: route row r at level 0 to rev(r) at
        // level d. Greedy bit-fixing funnels everything through few middle
        // nodes; Valiant's random intermediates spread it out. Compare
        // makespans on a dim where the effect is visible.
        let dim = 6;
        let g = bf::butterfly(dim);
        let rows = 1usize << dim;
        let rev = bit_reversal(rows);
        let pairs: Vec<(Node, Node)> = rev
            .pairs
            .iter()
            .map(|&(s, t)| (bf::bf_index(dim, 0, s as usize), bf::bf_index(dim, dim, t as usize)))
            .collect();
        let mut rng = seeded_rng(11);
        let greedy_pkts = make_packets(&g, &pairs, &GreedyButterfly { dim }, &mut rng).unwrap();
        let greedy_out = route(&g, &greedy_pkts, Discipline::FarthestFirst, 1 << 20).unwrap();
        let val_pkts = make_packets(&g, &pairs, &ValiantButterfly { dim }, &mut rng).unwrap();
        let val_out = route(&g, &val_pkts, Discipline::FarthestFirst, 1 << 20).unwrap();
        assert!(val_out.delivered_at.iter().all(|&d| d != u32::MAX));
        assert!(greedy_out.delivered_at.iter().all(|&d| d != u32::MAX));
        // Valiant's path lengths are ≈ 2× greedy, but its makespan must not
        // blow up the way greedy's does on the adversarial pattern; allow
        // generous slack while still asserting the qualitative relation:
        // greedy suffers at least √rows congestion on bit reversal.
        assert!(
            greedy_out.steps as usize >= (rows as f64).sqrt() as usize,
            "greedy makespan {} suspiciously small",
            greedy_out.steps
        );
        assert!(
            (val_out.steps as usize) < 8 * dim * dim,
            "valiant makespan {} too large",
            val_out.steps
        );
    }

    #[test]
    fn wrapped_walk_valid_and_short() {
        for dim in [3usize, 4, 6] {
            let g = bf::wrapped_butterfly(dim);
            let sel = GreedyWrappedButterfly { dim };
            let mut rng = seeded_rng(dim as u64);
            for _ in 0..30 {
                let src = rng.gen_range(0..g.n() as Node);
                let dst = rng.gen_range(0..g.n() as Node);
                let p = sel.walk(src, dst);
                assert_eq!(p[0], src);
                assert_eq!(*p.last().unwrap(), dst);
                assert!(p.len() <= 2 * dim, "dim {dim}: path {} hops", p.len() - 1);
                for w in p.windows(2) {
                    assert!(g.has_edge(w[0], w[1]), "hop {w:?}");
                }
            }
        }
    }

    #[test]
    fn wrapped_walk_routes_h_h() {
        let dim = 4;
        let g = bf::wrapped_butterfly(dim);
        let mut rng = seeded_rng(99);
        let prob = random_h_h(g.n(), 2, &mut rng);
        let pk = make_packets(&g, &prob.pairs, &GreedyWrappedButterfly { dim }, &mut rng).unwrap();
        let lim: u32 = pk.iter().map(|p| p.path.len() as u32 + 1).sum::<u32>() + 64;
        let out = route(&g, &pk, Discipline::FarthestFirst, lim).unwrap();
        assert!(out.delivered_at.iter().all(|&d| d != u32::MAX));
    }

    #[test]
    fn valiant_path_valid() {
        let dim = 3;
        let g = bf::butterfly(dim);
        let sel = ValiantButterfly { dim };
        let mut rng = seeded_rng(5);
        for _ in 0..20 {
            let src = rng.gen_range(0..g.n() as Node);
            let dst = rng.gen_range(0..g.n() as Node);
            let p = sel.path(&g, src, dst, &mut rng).unwrap();
            assert_eq!(p[0], src);
            assert_eq!(*p.last().unwrap(), dst);
            for w in p.windows(2) {
                assert!(w[0] == w[1] || g.has_edge(w[0], w[1]));
            }
        }
    }

    use rand::Rng;
}
