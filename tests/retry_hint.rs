//! The `retry_after_ms` backpressure hint must stay safe at both ends:
//! whatever the server suggests, the client never sleeps past the
//! [`MAX_RETRY_SLEEP`] cap, and a sharded deployment turns an overloaded
//! shard's rejection into a successful answer from a healthy one instead
//! of bouncing it back to the caller.

use std::time::Duration;

use proptest::prelude::*;
use universal_networks::serve::client::{retry_sleep, Client, MAX_RETRY_SLEEP};
use universal_networks::serve::protocol::SimulateReq;
use universal_networks::serve::ring::Ring;
use universal_networks::serve::router::{simulate_fingerprint, Router, ShardConfig};
use universal_networks::serve::{ClientError, ServeConfig, Server};

fn probe_spec() -> SimulateReq {
    SimulateReq {
        guest: "ring:12".into(),
        host: "torus:2x2".into(),
        steps: 2,
        seed: 7,
        deadline_ms: None,
        id: None,
    }
}

fn server(queue_cap: usize) -> Server {
    Server::start(ServeConfig { workers: 2, queue_cap, ..ServeConfig::default() })
        .expect("bind 127.0.0.1:0")
}

proptest! {
    /// No hint the server can emit — absent, zero, or u64::MAX — makes the
    /// client sleep longer than the cap, and small hints are honored
    /// exactly.
    #[test]
    fn retry_sleep_never_exceeds_the_cap(present in any::<bool>(), ms in any::<u64>()) {
        let hint = present.then_some(ms);
        let slept = retry_sleep(hint);
        prop_assert!(slept <= MAX_RETRY_SLEEP, "{slept:?} exceeds {MAX_RETRY_SLEEP:?}");
        let suggested = Duration::from_millis(hint.unwrap_or(10));
        if suggested <= MAX_RETRY_SLEEP {
            prop_assert_eq!(slept, suggested);
        } else {
            prop_assert_eq!(slept, MAX_RETRY_SLEEP);
        }
    }
}

/// A shard that rejects everything (`queue_cap: 0`) must not cost the
/// caller anything when a healthy shard exists: the router absorbs the
/// `overloaded` rejection by failing the request over, and keeps the
/// overloaded shard marked healthy (overload is backpressure, not death).
#[test]
fn healthy_shard_absorbs_requests_rejected_by_an_overloaded_one() {
    let spec = probe_spec();
    let home = Ring::new(2).shard_of(simulate_fingerprint(&spec).expect("fingerprint"));

    // Place the always-overloaded backend exactly where the probe homes.
    let mut backends = vec![server(32), server(32)];
    backends[home] = server(0);
    let router = Router::start(ShardConfig {
        backends: backends.iter().map(|b| b.addr().to_string()).collect(),
        workers: 2,
        probe_interval_ms: 60_000,
        ..ShardConfig::default()
    })
    .expect("bind router");

    let mut client = Client::connect(&router.addr().to_string()).expect("connect");
    for _ in 0..3 {
        client.simulate(&spec).expect("healthy shard answers the failover");
    }
    drop(client);

    let report = router.drain();
    assert!(report.stats.overloads_absorbed >= 3, "every rejection was absorbed");
    assert!(report.stats.failovers >= 3, "absorption rides the failover path");
    assert_eq!(report.stats.healthy, 2, "overload never ejects a shard");
    assert_eq!(report.stats.completed, 3, "no request bounced back to the caller");
    for b in backends {
        b.drain();
    }
}

/// When every shard is overloaded the router passes the rejection — hint
/// and all — through to the client, and the hint it carries sleeps under
/// the cap.
#[test]
fn all_shards_overloaded_propagates_a_capped_hint() {
    let backend = server(0);
    let router = Router::start(ShardConfig {
        backends: vec![backend.addr().to_string()],
        workers: 2,
        probe_interval_ms: 60_000,
        ..ShardConfig::default()
    })
    .expect("bind router");

    let mut client = Client::connect(&router.addr().to_string()).expect("connect");
    match client.simulate(&probe_spec()) {
        Err(ClientError::Overloaded { retry_after_ms, .. }) => {
            assert!(retry_sleep(retry_after_ms) <= MAX_RETRY_SLEEP);
        }
        other => panic!("expected an overloaded rejection, got {other:?}"),
    }
    drop(client);
    router.drain();
    backend.drain();
}
