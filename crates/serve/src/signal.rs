//! Minimal SIGTERM/SIGINT-to-flag plumbing for graceful drain.
//!
//! No `libc` crate: on Unix we call the C library's `signal` symbol
//! directly (std already links it) and the handlers do nothing but store
//! into a static `AtomicBool` — the only thing that is async-signal-safe
//! anyway. On other platforms installation is a no-op and the flags simply
//! never trip (stdin-close remains the drain trigger there).
//!
//! `unet serve` installs only the SIGTERM flag (Ctrl-C keeps its abrupt
//! default for operators who want out *now*); `unet shard` supervises
//! child processes, so it additionally catches SIGINT to drain the whole
//! tree instead of orphaning the backends.

use std::sync::atomic::{AtomicBool, Ordering};

static TERM: AtomicBool = AtomicBool::new(false);
static INT: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
extern "C" fn on_term(_sig: i32) {
    TERM.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
extern "C" fn on_int(_sig: i32) {
    INT.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
unsafe fn install(signum: i32, handler: extern "C" fn(i32)) {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    signal(signum, handler as *const () as usize);
}

/// Install a SIGTERM handler that sets a process-global flag; returns the
/// flag. Safe to call more than once.
pub fn install_sigterm_flag() -> &'static AtomicBool {
    #[cfg(unix)]
    unsafe {
        const SIGTERM: i32 = 15;
        install(SIGTERM, on_term);
    }
    &TERM
}

/// Install a SIGINT handler that sets a process-global flag; returns the
/// flag. Safe to call more than once.
pub fn install_sigint_flag() -> &'static AtomicBool {
    #[cfg(unix)]
    unsafe {
        const SIGINT: i32 = 2;
        install(SIGINT, on_int);
    }
    &INT
}

/// Has SIGTERM been received since [`install_sigterm_flag`]?
pub fn sigterm_received() -> bool {
    TERM.load(Ordering::SeqCst)
}

/// Has SIGINT been received since [`install_sigint_flag`]?
pub fn sigint_received() -> bool {
    INT.load(Ordering::SeqCst)
}
