//! Deterministic closed-loop load generator.
//!
//! `clients` concurrent connections each issue `requests_per_client`
//! identical `simulate` requests back-to-back (closed loop: the next
//! request leaves only after the previous response arrives). The request
//! *count* and workload are fully deterministic — only wall-clock latency
//! varies — which is what the E19 offered-load sweep needs: saturation
//! throughput ordered by worker count, with the shared route-plan cache
//! absorbing every repeat of the workload.
//!
//! An optional warm-up request is issued before the clients start so the
//! one unavoidable shared-cache miss happens deterministically up front
//! (`hit_ratio = R·C / (R·C + 1)` on a repeated workload).

use std::io;
use std::time::Instant;

use crate::client::request_line;
use crate::protocol::{parse_response, simulate_request_line, Response, SimulateReq};

/// Load-generator configuration.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address (`host:port`).
    pub addr: String,
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Requests each client issues.
    pub requests_per_client: usize,
    /// Guest graph spec.
    pub guest: String,
    /// Host graph spec.
    pub host: String,
    /// Guest steps per request.
    pub steps: u32,
    /// Seed (identical across requests — that is the point: a repeated
    /// workload exercises the shared plan cache).
    pub seed: u64,
    /// Per-request deadline override.
    pub deadline_ms: Option<u64>,
    /// Issue one warm-up request before the clients start.
    pub warmup: bool,
}

/// What a load-generator run measured.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Requests issued (including the warm-up when enabled).
    pub sent: usize,
    /// Requests answered with `result`.
    pub completed: usize,
    /// Requests rejected with `overloaded`.
    pub rejected: usize,
    /// Requests answered with `error` or lost to I/O failures.
    pub errors: usize,
    /// Wall time of the measured (post-warm-up) phase in milliseconds.
    pub wall_ms: f64,
    /// Per-request latencies in milliseconds, sorted ascending
    /// (warm-up excluded).
    pub latencies_ms: Vec<f64>,
}

impl LoadgenReport {
    /// Mean request latency (`None` when nothing completed).
    pub fn mean_ms(&self) -> Option<f64> {
        if self.latencies_ms.is_empty() {
            None
        } else {
            Some(self.latencies_ms.iter().sum::<f64>() / self.latencies_ms.len() as f64)
        }
    }

    /// Nearest-rank latency percentile, `p` in `[0, 100]`.
    pub fn percentile_ms(&self, p: f64) -> Option<f64> {
        if self.latencies_ms.is_empty() {
            return None;
        }
        let idx = ((p / 100.0) * (self.latencies_ms.len() - 1) as f64).round() as usize;
        Some(self.latencies_ms[idx.min(self.latencies_ms.len() - 1)])
    }

    /// Completed requests per second over the measured phase.
    pub fn throughput_rps(&self) -> f64 {
        if self.wall_ms <= 0.0 {
            0.0
        } else {
            self.completed as f64 / (self.wall_ms / 1e3)
        }
    }
}

/// Outcome counters of a single client's closed loop.
#[derive(Debug, Default)]
struct ClientTally {
    completed: usize,
    rejected: usize,
    errors: usize,
    latencies_ms: Vec<f64>,
}

fn run_client(addr: &str, line: &str, requests: usize) -> ClientTally {
    use std::io::{BufRead, BufReader, Write};
    let mut tally = ClientTally::default();
    let mut conn: Option<(std::net::TcpStream, BufReader<std::net::TcpStream>)> = None;
    for _ in 0..requests {
        if conn.is_none() {
            match std::net::TcpStream::connect(addr) {
                Ok(stream) => match stream.try_clone() {
                    Ok(read_half) => conn = Some((stream, BufReader::new(read_half))),
                    Err(_) => {
                        tally.errors += 1;
                        continue;
                    }
                },
                Err(_) => {
                    tally.errors += 1;
                    continue;
                }
            }
        }
        let (stream, reader) = conn.as_mut().expect("connected above");
        let started = Instant::now();
        let mut response = String::new();
        let io_ok = writeln!(stream, "{line}")
            .and_then(|_| stream.flush())
            .and_then(|_| reader.read_line(&mut response))
            .map(|n| n > 0)
            .unwrap_or(false);
        if !io_ok {
            tally.errors += 1;
            conn = None; // reconnect and keep going
            continue;
        }
        match parse_response(response.trim()) {
            Ok(Response::Result(_)) => {
                tally.completed += 1;
                tally.latencies_ms.push(started.elapsed().as_secs_f64() * 1e3);
            }
            Ok(Response::Overloaded { .. }) => {
                tally.rejected += 1;
                conn = None; // the server dropped this connection
            }
            Ok(Response::Error { .. }) | Err(_) => tally.errors += 1,
        }
    }
    tally
}

/// Run the closed loop and aggregate every client's tally.
pub fn run(cfg: &LoadgenConfig) -> io::Result<LoadgenReport> {
    let line = simulate_request_line(&SimulateReq {
        guest: cfg.guest.clone(),
        host: cfg.host.clone(),
        steps: cfg.steps,
        seed: cfg.seed,
        deadline_ms: cfg.deadline_ms,
        id: None,
    });
    let mut sent = 0usize;
    let mut warm_completed = 0usize;
    let mut warm_errors = 0usize;
    if cfg.warmup {
        sent += 1;
        match request_line(&cfg.addr, &line) {
            Ok(resp) => match parse_response(resp.trim()) {
                Ok(Response::Result(_)) => warm_completed += 1,
                _ => warm_errors += 1,
            },
            Err(_) => warm_errors += 1,
        }
    }
    let started = Instant::now();
    let tallies: Vec<ClientTally> = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.clients)
            .map(|_| {
                let addr = &cfg.addr;
                let line = &line;
                s.spawn(move |_| run_client(addr, line, cfg.requests_per_client))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client panicked")).collect()
    })
    .expect("loadgen scope");
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    sent += cfg.clients * cfg.requests_per_client;
    let mut report = LoadgenReport {
        sent,
        completed: warm_completed,
        rejected: 0,
        errors: warm_errors,
        wall_ms,
        latencies_ms: Vec::new(),
    };
    for t in tallies {
        report.completed += t.completed;
        report.rejected += t.rejected;
        report.errors += t.errors;
        report.latencies_ms.extend(t.latencies_ms);
    }
    report.latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_nearest_rank() {
        let report = LoadgenReport {
            sent: 4,
            completed: 4,
            rejected: 0,
            errors: 0,
            wall_ms: 100.0,
            latencies_ms: vec![1.0, 2.0, 3.0, 10.0],
        };
        assert_eq!(report.percentile_ms(0.0), Some(1.0));
        assert_eq!(report.percentile_ms(50.0), Some(3.0));
        assert_eq!(report.percentile_ms(100.0), Some(10.0));
        assert_eq!(report.mean_ms(), Some(4.0));
        assert_eq!(report.throughput_rps(), 40.0);
    }

    #[test]
    fn empty_report_has_no_percentiles() {
        let report = LoadgenReport {
            sent: 0,
            completed: 0,
            rejected: 0,
            errors: 0,
            wall_ms: 0.0,
            latencies_ms: Vec::new(),
        };
        assert_eq!(report.percentile_ms(99.0), None);
        assert_eq!(report.mean_ms(), None);
        assert_eq!(report.throughput_rps(), 0.0);
    }
}
