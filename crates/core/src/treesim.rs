//! Constant-slowdown simulation of **short** computations on trees.
//!
//! Section 1 remarks that the lower bound needs computations of length
//! `≥ ⌈2√(log m)⌉` because "a constant-degree network of size `2^{O(t)}·n`
//! (consisting of n constant-degree trees of depth t) suffices to simulate
//! all length-t computations … with constant slowdown". This module makes
//! that folklore construction concrete:
//!
//! For each guest node `i`, the host owns an *unfolding tree*: the root is
//! assigned the pebble `(P_i, T)`, and a node assigned `(P_j, t)` has one
//! child per predecessor pebble `(P_{j'}, t−1)` (`j' = j` or a guest
//! neighbour). Leaves are assigned initial pebbles, which every processor
//! holds. The schedule sweeps bottom-up: children stream their pebbles to
//! the parent (one receive per step), then the parent generates — a fixed
//! `c + 2` host steps per guest level, i.e. slowdown `c + 2 = O(1)`, with
//! host size `Σ_i (c+1)^{≤T} = 2^{O(T)}·n`.

use crate::guest::GuestComputation;
use unet_pebble::protocol::{Op, Pebble, Protocol, ProtocolBuilder};
use unet_topology::{Graph, GraphBuilder, Node};

/// The unfolding-tree host for simulating `steps` guest steps of `guest`.
#[derive(Debug, Clone)]
pub struct TreeHost {
    /// The host graph (forest of unfolding trees).
    pub graph: Graph,
    /// For every host node: the pebble it is responsible for generating
    /// (or holding, at leaves).
    pub assignment: Vec<Pebble>,
    /// Parent host node (self for roots).
    pub parent: Vec<Node>,
    /// Children host nodes.
    pub children: Vec<Vec<Node>>,
    /// Root host node of guest `i`'s tree.
    pub roots: Vec<Node>,
}

/// Build the unfolding-tree host. Size is `Θ(n·(c+1)^T)` — keep `steps`
/// small (this is the point: the construction only beats the lower bound for
/// `T` below `≈ 2√(log m)`).
pub fn build_tree_host(guest: &Graph, steps: u32) -> TreeHost {
    let n = guest.n();
    let mut assignment = Vec::new();
    let mut parent = Vec::new();
    let mut children: Vec<Vec<Node>> = Vec::new();
    let mut roots = Vec::with_capacity(n);
    let mut edges = Vec::new();

    for i in 0..n as Node {
        // BFS-expand the unfolding of (P_i, steps).
        let root = assignment.len() as Node;
        roots.push(root);
        assignment.push(Pebble::new(i, steps));
        parent.push(root);
        children.push(Vec::new());
        let mut frontier = vec![root];
        for t in (1..=steps).rev() {
            let mut next_frontier = Vec::new();
            for &h in &frontier {
                let j = assignment[h as usize].node;
                // Predecessors of (P_j, t): (P_j, t−1) and neighbours'.
                let mut preds = vec![j];
                preds.extend_from_slice(guest.neighbors(j));
                for j2 in preds {
                    let ch = assignment.len() as Node;
                    assignment.push(Pebble::new(j2, t - 1));
                    parent.push(h);
                    children.push(Vec::new());
                    children[h as usize].push(ch);
                    edges.push((h, ch));
                    next_frontier.push(ch);
                }
            }
            frontier = next_frontier;
        }
    }
    let mut b = GraphBuilder::new(assignment.len());
    for (u, v) in edges {
        b.add_edge(u, v);
    }
    TreeHost { graph: b.build(), assignment, parent, children, roots }
}

/// Emit the constant-slowdown protocol on a tree host: for guest level
/// `t = 1..=T`, every host node assigned a level-`t` pebble (they live at
/// tree depth `T − t`) receives its children's level-`t−1` pebbles one per
/// step and then generates. All trees and all same-depth nodes run in
/// lockstep, so the per-level cost is `max_arity + 1 ≤ c + 2` host steps.
pub fn tree_protocol(comp: &GuestComputation, host: &TreeHost, steps: u32) -> Protocol {
    let n = comp.n();
    let m = host.graph.n();
    let max_arity = host.children.iter().map(|c| c.len()).max().unwrap_or(0);
    let mut b = ProtocolBuilder::new(n, steps, m);
    // depth[h]: distance from root; level-t generators sit at depth T − t.
    let mut depth = vec![0u32; m];
    for h in 0..m {
        let p = host.parent[h];
        if p != h as Node {
            depth[h] = depth[p as usize] + 1;
        }
    }
    // Process nodes grouped by the guest level they generate.
    for t in 1..=steps {
        let gen_depth = steps - t;
        // Stream children's pebbles up, one child index per step.
        for slot in 0..max_arity {
            for h in 0..m as Node {
                if depth[h as usize] == gen_depth && host.assignment[h as usize].t == t {
                    if let Some(&ch) = host.children[h as usize].get(slot) {
                        let pb = host.assignment[ch as usize];
                        debug_assert_eq!(pb.t, t - 1);
                        b.transfer(ch, h, pb);
                    }
                }
            }
            b.end_step();
        }
        // Generate.
        for h in 0..m as Node {
            if depth[h as usize] == gen_depth && host.assignment[h as usize].t == t {
                b.set_op(h, Op::Generate(host.assignment[h as usize]));
            }
        }
        b.end_step();
    }
    b.finish()
}

/// Predicted host size `Σ_{ℓ=0}^{T} n·(c+1)^ℓ` for a `c`-regular guest.
pub fn tree_host_size(n: usize, c: usize, steps: u32) -> usize {
    let mut per_tree = 0usize;
    let mut level = 1usize;
    for _ in 0..=steps {
        per_tree += level;
        level *= c + 1;
    }
    per_tree * n
}

#[cfg(test)]
mod tests {
    use super::*;
    use unet_pebble::check;
    use unet_topology::generators::{ring, torus};

    #[test]
    fn tree_host_structure() {
        let guest = ring(4); // 2-regular
        let host = build_tree_host(&guest, 2);
        // Per tree: 1 + 3 + 9 = 13 nodes; 4 trees.
        assert_eq!(host.graph.n(), 4 * 13);
        assert_eq!(tree_host_size(4, 2, 2), 4 * 13);
        assert!(host.graph.max_degree() <= 2 + 2); // arity c+1=3, +1 parent
                                                   // Leaves are initial pebbles.
        for h in 0..host.graph.n() {
            if host.children[h].is_empty() {
                assert_eq!(host.assignment[h].t, 0);
            }
        }
    }

    #[test]
    fn tree_protocol_verifies_with_constant_slowdown() {
        let guest = ring(6);
        let comp = GuestComputation::random(guest.clone(), 11);
        let steps = 3;
        let host = build_tree_host(&guest, steps);
        let proto = tree_protocol(&comp, &host, steps);
        let trace = check(&guest, &host.graph, &proto).expect("tree protocol verifies");
        // Slowdown = (max_arity + 1) = c + 2 = 4, independent of T.
        assert_eq!(proto.slowdown(), 4.0);
        // Every root generated its final pebble.
        for (i, &r) in host.roots.iter().enumerate() {
            assert!(trace.generated_by(i as Node, steps).contains(&r));
        }
    }

    #[test]
    fn slowdown_constant_across_lengths() {
        let guest = ring(4);
        let comp = GuestComputation::random(guest.clone(), 1);
        let mut slowdowns = Vec::new();
        for steps in 1..=4u32 {
            let host = build_tree_host(&guest, steps);
            let proto = tree_protocol(&comp, &host, steps);
            check(&guest, &host.graph, &proto).expect("verify");
            slowdowns.push(proto.slowdown());
        }
        assert!(slowdowns.windows(2).all(|w| w[0] == w[1]), "{slowdowns:?}");
    }

    #[test]
    fn host_size_exponential_in_t() {
        // The size must blow up ~ (c+1)^T — the reason the lower bound
        // insists on T ≥ 2√(log m).
        let guest = torus(3, 3); // 4-regular
        let s1 = build_tree_host(&guest, 1).graph.n();
        let s3 = build_tree_host(&guest, 3).graph.n();
        assert!(s3 > 20 * s1 / 2, "s1 = {s1}, s3 = {s3}");
        assert_eq!(tree_host_size(9, 4, 1), 9 * 6);
    }
}
