//! The declarative experiment registry.
//!
//! One [`Experiment`] descriptor per machine-checked experiment: its id,
//! the paper claim it instantiates, its parameter grid (full and `--quick`
//! variants), a pure runner mapping one grid point to one measured row,
//! and the expected-shape predicates ([`crate::shape`]) the rows must
//! satisfy. The descriptors replace the copy-pasted artifact code that
//! used to live in `bench-json` and the `benches/e*_*.rs` tables: the
//! sweep runner ([`crate::sweep`]), the regression gate
//! ([`crate::diff`]), and the markdown report ([`crate::report_md`]) all
//! consume the same registry.
//!
//! Runners are **pure functions of their grid point**: every parameter —
//! sizes, step counts, seeds — is in the [`GridPoint`], so points can run
//! in parallel shards ([`unet_topology::par`]) and resumed rows merge
//! deterministically. (This is why the registry drives the
//! `Simulation::builder()` engine with an explicit per-row seed rather
//! than threading one RNG through a whole sweep.)

use std::time::Instant;
use unet_core::prelude::{bounds, presets, Embedding, Simulation};
use unet_core::routers::SelectorRouter;
use unet_core::verify::verify_run;
use unet_core::CachePolicy;
use unet_faults::{DegradedSimulator, FaultPlan};
use unet_lowerbound::tradeoff_table;
use unet_obs::json::Value;
use unet_obs::InMemoryRecorder;
use unet_routing::butterfly::{GreedyButterfly, ValiantButterfly};
use unet_routing::greedy::DimensionOrder;
use unet_routing::PathSelector;
use unet_serve::loadgen::{self, LoadgenConfig};
use unet_serve::router::{Router as ShardRouter, ShardConfig};
use unet_serve::{ServeConfig, Server};
use unet_topology::generators::{butterfly, torus};
use unet_topology::util::seeded_rng;
use unet_topology::Graph;

use crate::shape::Shape;
use crate::standard_guest;

/// One point of an experiment's parameter grid: named parameters, in a
/// fixed order. Runners read sizes/seeds out of it; the sweep runner uses
/// the projection onto [`Experiment::grid_keys`] to match rows against
/// resumed partial artifacts.
#[derive(Debug, Clone, PartialEq)]
pub struct GridPoint {
    /// Named parameter values (grid keys first, auxiliary constants after).
    pub params: Vec<(&'static str, Value)>,
}

impl GridPoint {
    /// Build a point from `(name, value)` pairs.
    pub fn new(params: Vec<(&'static str, Value)>) -> Self {
        GridPoint { params }
    }

    /// Look up a parameter by name.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.params.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// Required `u64` parameter (panics on absence — a registry bug, not
    /// a user error).
    pub fn u64(&self, key: &str) -> u64 {
        self.get(key).and_then(Value::as_u64).unwrap_or_else(|| panic!("grid point lacks {key}"))
    }

    /// Required `f64` parameter.
    pub fn f64(&self, key: &str) -> f64 {
        self.get(key).and_then(Value::as_f64).unwrap_or_else(|| panic!("grid point lacks {key}"))
    }

    /// Required string parameter.
    pub fn str(&self, key: &str) -> &str {
        self.get(key).and_then(Value::as_str).unwrap_or_else(|| panic!("grid point lacks {key}"))
    }

    /// Canonical identity of this point under the experiment's grid keys:
    /// the JSON of the key-restricted parameter object.
    pub fn key(&self, grid_keys: &[&str]) -> String {
        project(|k| self.get(k).cloned(), grid_keys)
    }
}

fn project(get: impl Fn(&str) -> Option<Value>, grid_keys: &[&str]) -> String {
    Value::Obj(grid_keys.iter().map(|&k| (k.to_string(), get(k).unwrap_or(Value::Null))).collect())
        .to_json()
}

/// The grid-key projection of a measured **row** (rows embed their grid
/// parameters), for matching against [`GridPoint::key`]. Returns `None`
/// when the row is missing a key — such rows never match and are re-run.
pub fn row_key(row: &Value, grid_keys: &[&str]) -> Option<String> {
    if grid_keys.iter().any(|k| row.get(k).is_none()) {
        return None;
    }
    Some(project(|k| row.get(k).cloned(), grid_keys))
}

/// A declarative experiment: everything the sweep runner, the regression
/// gate, and the report renderer need to know about one paper claim.
pub struct Experiment {
    /// Stable id (`"E1"`).
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// The paper claim instantiated, with its section/theorem reference.
    pub claim: &'static str,
    /// The parameter names that identify a grid point (resume matching).
    pub grid_keys: &'static [&'static str],
    /// Experiment-level constants for the artifact header.
    pub meta: fn(quick: bool) -> Vec<(String, Value)>,
    /// The parameter grid (full or `--quick` CI-smoke sizes).
    pub grid: fn(quick: bool) -> Vec<GridPoint>,
    /// Run one grid point → one measured row (pure; parallel-safe).
    pub run: fn(&GridPoint) -> Value,
    /// The expected-shape predicates the rows must satisfy.
    pub shapes: fn() -> Vec<Shape>,
}

/// The full registry, in canonical order.
pub fn registry() -> Vec<Experiment> {
    vec![e1(), e2(), e16(), e17(), e18(), e19(), e20(), e21(), e22()]
}

/// The registry's base seed, recorded in the artifact header; every row
/// seed below is a fixed constant derived independently of it so that
/// shards are order-independent.
pub const BASE_SEED: u64 = 0x5EED;

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// FNV-1a over a byte stream: the stable 64-bit fingerprint used for the
/// `protocol_hash` / `states_hash` columns (bit-for-bit equality across
/// rows without embedding whole protocols in the artifact).
pub fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

// --- E1: Theorem 2.1 upper bound on butterfly hosts --------------------

fn e1_sizes(quick: bool) -> (usize, u32) {
    if quick {
        (96, 2)
    } else {
        (512, 3)
    }
}

fn e1() -> Experiment {
    Experiment {
        id: "E1",
        title: "Theorem 2.1 upper bound: butterfly hosts",
        claim: "Thm 2.1 + butterfly corollary: inefficiency k = s*m/n is Theta(log m) \
                (affine in log m, never below the Thm 3.1 floor)",
        grid_keys: &["dim"],
        meta: |quick| {
            let (n, steps) = e1_sizes(quick);
            vec![
                ("guest".into(), Value::Str(format!("random-regular n={n} d=4"))),
                ("guest_n".into(), Value::UInt(n as u64)),
                ("guest_steps".into(), Value::UInt(steps as u64)),
                ("router".into(), Value::Str("butterfly-valiant".into())),
            ]
        },
        grid: |quick| {
            let (n, steps) = e1_sizes(quick);
            (2..=4usize)
                .map(|dim| {
                    GridPoint::new(vec![
                        ("dim", Value::UInt(dim as u64)),
                        ("guest_n", Value::UInt(n as u64)),
                        ("guest_steps", Value::UInt(steps as u64)),
                        ("seed", Value::UInt(0xE100 + dim as u64)),
                    ])
                })
                .collect()
        },
        run: |p| {
            let dim = p.u64("dim") as usize;
            let n = p.u64("guest_n") as usize;
            let steps = p.u64("guest_steps") as u32;
            let (guest, comp) = standard_guest(n, 0xE1);
            let host = butterfly(dim);
            let router: SelectorRouter<ValiantButterfly> = presets::butterfly_valiant(dim);
            let wall_start = Instant::now();
            let run = Simulation::builder()
                .guest(&comp)
                .host(&host)
                .embedding(Embedding::block(guest.n(), host.n()))
                .router(&router)
                .steps(steps)
                .seed(p.u64("seed"))
                .threads(1) // the sweep itself shards across rows
                .run()
                .expect("E1 configuration is valid");
            let m = verify_run(&comp, &host, &run, steps).expect("certifies").metrics;
            let wall_ms = wall_start.elapsed().as_secs_f64() * 1e3;
            obj(vec![
                ("dim", Value::UInt(dim as u64)),
                ("guest_n", Value::UInt(m.guest_n as u64)),
                ("host_m", Value::UInt(m.host_m as u64)),
                ("guest_steps", Value::UInt(m.guest_t as u64)),
                ("makespan", Value::UInt(m.host_steps as u64)),
                ("load_bound", Value::Float(bounds::load_bound(m.guest_n, m.host_m))),
                ("slowdown", Value::Float(m.slowdown)),
                ("inefficiency", Value::Float(m.inefficiency)),
                ("k_upper", Value::Float(bounds::upper_bound_butterfly(m.guest_n, m.host_m))),
                ("avg_weight", Value::Float(m.avg_weight)),
                ("wall_ms", Value::Float(wall_ms)),
            ])
        },
        shapes: || {
            vec![
                // Thm 2.1: k grows affinely in log m (constant Δk per dim).
                Shape::AffineInLog { x: "host_m", y: "inefficiency", max_slope_ratio: 2.5 },
                // Thm 3.1: no measured point below the Ω(log m) curve.
                Shape::FloorLog { x: "host_m", y: "inefficiency", alpha: 1.0 },
                // Any simulation: slowdown dominates the load bound n/m.
                Shape::AtLeastColumn { y: "slowdown", floor: "load_bound" },
            ]
        },
    }
}

// --- E2: Theorem 3.1 lower-bound trade-off ------------------------------

const E2_GAMMA: f64 = 0.125;

fn e2_exp(quick: bool) -> u32 {
    if quick {
        8
    } else {
        14
    }
}

fn e2() -> Experiment {
    Experiment {
        id: "E2",
        title: "Theorem 3.1 lower-bound trade-off",
        claim: "Thm 3.1: m*s = Omega(n*log m); k_min grows with m and the lower \
                curve stays below the Thm 2.1 upper curve everywhere",
        grid_keys: &["host_m"],
        meta: |quick| {
            vec![
                ("guest_n".into(), Value::UInt(1u64 << e2_exp(quick))),
                ("gamma".into(), Value::Float(E2_GAMMA)),
            ]
        },
        grid: |quick| {
            let exp = e2_exp(quick);
            let n = 1u64 << exp;
            (3..=exp)
                .map(|e| {
                    GridPoint::new(vec![
                        ("host_m", Value::UInt(1u64 << e)),
                        ("guest_n", Value::UInt(n)),
                    ])
                })
                .collect()
        },
        run: |p| {
            let n = p.u64("guest_n");
            let m = p.u64("host_m");
            let wall_start = Instant::now();
            let table = tradeoff_table(n, &[m], E2_GAMMA, 4);
            let row = &table[0];
            let wall_ms = wall_start.elapsed().as_secs_f64() * 1e3;
            obj(vec![
                ("host_m", Value::UInt(row.m)),
                ("guest_n", Value::UInt(n)),
                ("inefficiency_ideal", Value::Float(row.k_ideal)),
                ("inefficiency_shape", Value::Float(row.k_shape)),
                ("inefficiency_paper", Value::Float(row.k_paper)),
                ("slowdown_shape", Value::Float(row.s_shape)),
                ("slowdown_upper", Value::Float(row.s_upper)),
                ("ms_product", Value::Float(row.ms_product)),
                ("wall_ms", Value::Float(wall_ms)),
            ])
        },
        shapes: || {
            vec![
                // k_min(m) grows with m (the Ω(log m) inefficiency floor).
                Shape::MonotoneInLog { x: "host_m", y: "inefficiency_ideal" },
                // The idealized solution of k + log2 k = log2 m stays a
                // constant fraction of log2 m.
                Shape::FloorLog { x: "host_m", y: "inefficiency_ideal", alpha: 0.5 },
                // Lower bound below upper bound everywhere (else one of the
                // two curves is mis-computed).
                Shape::AtLeastColumn { y: "slowdown_upper", floor: "slowdown_shape" },
                // The trade-off invariant: m*s_shape >= n (log m >= 1 here).
                Shape::AtLeastColumn { y: "ms_product", floor: "guest_n" },
            ]
        },
    }
}

// --- E16: degraded-mode fault sweep -------------------------------------

struct E16Sizes {
    n: usize,
    dim: usize,
    side: usize,
    steps: u32,
    rates: &'static [f64],
}

fn e16_sizes(quick: bool) -> E16Sizes {
    if quick {
        // Rate 0.2 so that ⌊rate·m⌋ ≥ 1 even on the 9-node mesh — a
        // "faulty" row that kills nobody would test nothing.
        E16Sizes { n: 48, dim: 2, side: 3, steps: 2, rates: &[0.0, 0.2] }
    } else {
        E16Sizes { n: 256, dim: 3, side: 6, steps: 3, rates: &[0.0, 0.05, 0.1, 0.2] }
    }
}

/// One degraded run on `host`: crash-stop `rate` of the nodes at boundary
/// 2, simulate, certify, and report the measured numbers against the
/// Theorem 3.1 shape on the **surviving** size `m'`.
fn e16_run_on<S: PathSelector>(
    label: &str,
    host: &Graph,
    selector: S,
    guest_n: usize,
    steps: u32,
    rate: f64,
) -> Value {
    let (guest, comp) = standard_guest(guest_n, 0xE16);
    let plan = FaultPlan::crashes(host, rate, 2, 0xE16);
    let sim = DegradedSimulator {
        embedding: Embedding::block(guest_n, host.n()),
        plan,
        selector: Some(selector),
    };
    let wall_start = Instant::now();
    let run = sim
        .simulate(&comp, host, steps, &mut seeded_rng(0xE16))
        .expect("faults leave survivors at these rates");
    unet_pebble::check(&guest, host, &run.run.protocol).expect("degraded protocol certifies");
    assert_eq!(run.run.final_states, comp.run_final(steps), "bit-for-bit");
    let wall_ms = wall_start.elapsed().as_secs_f64() * 1e3;
    let k = run.surviving_inefficiency();
    let bound = bounds::lower_bound_inefficiency(run.m_surviving, 1.0);
    obj(vec![
        ("host", Value::Str(label.into())),
        ("fault_rate", Value::Float(rate)),
        ("host_m", Value::UInt(host.n() as u64)),
        ("m_surviving", Value::UInt(run.m_surviving as u64)),
        ("guest_n", Value::UInt(guest_n as u64)),
        ("slowdown", Value::Float(run.run.slowdown())),
        ("k", Value::Float(k)),
        ("k_bound", Value::Float(bound)),
        ("dropped", Value::UInt(run.dropped)),
        ("retried", Value::UInt(run.retried)),
        ("replayed", Value::UInt(run.replayed)),
        ("remapped", Value::UInt(run.remapped)),
        ("wall_ms", Value::Float(wall_ms)),
    ])
}

fn e16() -> Experiment {
    Experiment {
        id: "E16",
        title: "Degraded-mode simulation: slowdown vs crash-stop fault rate",
        claim: "Extrapolated from §3.1: a degraded host of surviving size m' is still \
                universal, and the Thm 3.1 trade-off holds on m' — measured \
                k' = s*m'/n >= Omega(log m') at every fault rate",
        grid_keys: &["host", "fault_rate"],
        meta: |quick| {
            let s = e16_sizes(quick);
            vec![
                ("guest".into(), Value::Str(format!("random-regular n={} d=4", s.n))),
                ("guest_n".into(), Value::UInt(s.n as u64)),
                ("guest_steps".into(), Value::UInt(s.steps as u64)),
                ("fault_boundary".into(), Value::UInt(2)),
            ]
        },
        grid: |quick| {
            let s = e16_sizes(quick);
            let mut points = Vec::new();
            for &rate in s.rates {
                for host in ["butterfly", "mesh"] {
                    points.push(GridPoint::new(vec![
                        ("host", Value::Str(host.into())),
                        ("fault_rate", Value::Float(rate)),
                        ("guest_n", Value::UInt(s.n as u64)),
                        ("guest_steps", Value::UInt(s.steps as u64)),
                        ("dim", Value::UInt(s.dim as u64)),
                        ("side", Value::UInt(s.side as u64)),
                    ]));
                }
            }
            points
        },
        run: |p| {
            let n = p.u64("guest_n") as usize;
            let steps = p.u64("guest_steps") as u32;
            let rate = p.f64("fault_rate");
            match p.str("host") {
                "butterfly" => {
                    let dim = p.u64("dim") as usize;
                    e16_run_on(
                        "butterfly",
                        &butterfly(dim),
                        GreedyButterfly { dim },
                        n,
                        steps,
                        rate,
                    )
                }
                "mesh" => {
                    let side = p.u64("side") as usize;
                    e16_run_on(
                        "mesh",
                        &torus(side, side),
                        DimensionOrder::torus(side, side),
                        n,
                        steps,
                        rate,
                    )
                }
                other => panic!("unknown E16 host {other:?}"),
            }
        },
        shapes: || {
            vec![
                // The claim itself: k on m' never dips below the Thm 3.1
                // curve (evaluated per row, stored as k_bound).
                Shape::AtLeastColumn { y: "k", floor: "k_bound" },
                // Crashes only remove hosts: m' <= m.
                Shape::AtLeastColumn { y: "host_m", floor: "m_surviving" },
            ]
        },
    }
}

// --- E17: engine thread/cache sweep -------------------------------------

fn e17_sizes(quick: bool) -> (usize, usize, u32) {
    if quick {
        (96, 2, 3)
    } else {
        (512, 3, 8)
    }
}

const E17_CONFIGS: [(&str, u64, bool); 4] = [
    ("seq-uncached", 1, false),
    ("seq-cached", 1, true),
    ("par-uncached", 4, false),
    ("par-cached", 4, true),
];

fn e17() -> Experiment {
    Experiment {
        id: "E17",
        title: "Engine thread/cache sweep: identical protocols, wall time",
        claim: "Engineering claim on the Thm 2.1 engine: the route-plan cache and \
                parallel phases change wall time only — protocol and final states \
                are bit-for-bit identical for every (threads, cache) setting",
        grid_keys: &["config"],
        meta: |quick| {
            let (n, _, steps) = e17_sizes(quick);
            vec![
                ("guest".into(), Value::Str(format!("random-regular n={n} d=4"))),
                ("guest_n".into(), Value::UInt(n as u64)),
                ("guest_steps".into(), Value::UInt(steps as u64)),
                ("router".into(), Value::Str("butterfly-valiant".into())),
            ]
        },
        grid: |quick| {
            let (n, dim, steps) = e17_sizes(quick);
            E17_CONFIGS
                .iter()
                .map(|&(label, threads, cache)| {
                    GridPoint::new(vec![
                        ("config", Value::Str(label.into())),
                        ("threads", Value::UInt(threads)),
                        ("cache", Value::Bool(cache)),
                        ("guest_n", Value::UInt(n as u64)),
                        ("dim", Value::UInt(dim as u64)),
                        ("guest_steps", Value::UInt(steps as u64)),
                        // One shared seed: rows must agree bit-for-bit.
                        ("seed", Value::UInt(0xE17)),
                    ])
                })
                .collect()
        },
        run: |p| {
            let n = p.u64("guest_n") as usize;
            let dim = p.u64("dim") as usize;
            let steps = p.u64("guest_steps") as u32;
            let threads = p.u64("threads") as usize;
            let cache = matches!(p.get("cache"), Some(Value::Bool(true)));
            let (guest, comp) = standard_guest(n, 0xE1);
            let host = butterfly(dim);
            let router: SelectorRouter<ValiantButterfly> = presets::butterfly_valiant(dim);
            let mut rec = InMemoryRecorder::new();
            let wall_start = Instant::now();
            let run = Simulation::builder()
                .guest(&comp)
                .host(&host)
                .embedding(Embedding::block(guest.n(), host.n()))
                .router(&router)
                .steps(steps)
                .seed(p.u64("seed"))
                .threads(threads)
                .cache_policy(if cache { CachePolicy::Enabled } else { CachePolicy::Disabled })
                .recorder(&mut rec)
                .run()
                .expect("E17 configuration is valid");
            let wall_ms = wall_start.elapsed().as_secs_f64() * 1e3;
            let trace = unet_pebble::check(&guest, &host, &run.protocol)
                .unwrap_or_else(|e| panic!("E17 {} failed to certify: {e}", p.str("config")));
            assert_eq!(run.final_states, comp.run_final(steps), "states bit-for-bit");
            let protocol_hash = fnv1a(unet_pebble::io::to_text(&run.protocol).bytes());
            let states_hash = fnv1a(run.final_states.iter().flat_map(|s| s.to_le_bytes()));
            obj(vec![
                ("config", Value::Str(p.str("config").into())),
                ("threads", Value::UInt(threads as u64)),
                ("cache", Value::Bool(cache)),
                ("guest_n", Value::UInt(n as u64)),
                ("host_m", Value::UInt(host.n() as u64)),
                ("guest_steps", Value::UInt(steps as u64)),
                ("makespan", Value::UInt(trace.host_steps as u64)),
                ("cache_hits", Value::UInt(rec.counter_value("sim.cache.hits"))),
                ("cache_misses", Value::UInt(rec.counter_value("sim.cache.misses"))),
                ("protocol_hash", Value::UInt(protocol_hash)),
                ("states_hash", Value::UInt(states_hash)),
                ("wall_ms", Value::Float(wall_ms)),
            ])
        },
        shapes: || {
            vec![
                // The bit-for-bit claim, at artifact level: every row emits
                // the identical protocol and states.
                Shape::ConstantColumn { col: "protocol_hash" },
                Shape::ConstantColumn { col: "states_hash" },
                Shape::ConstantColumn { col: "makespan" },
                // Deterministic cache behaviour: one cold phase, then replays.
                Shape::CacheCounters { cache: "cache", hits: "cache_hits", misses: "cache_misses" },
                // The cached row must not lose its speedup ordering (loose,
                // and skipped below the noise floor — see Shape docs).
                Shape::SpeedupOrdering {
                    key: "config",
                    fast: "seq-cached",
                    slow: "seq-uncached",
                    wall: "wall_ms",
                    factor: 1.5,
                    min_wall_ms: 5.0,
                },
            ]
        },
    }
}

// --- E18: congestion telemetry vs load factor ---------------------------

struct E18Sizes {
    dims: &'static [usize],
    loads: &'static [u64],
    steps: u32,
}

fn e18_sizes(quick: bool) -> E18Sizes {
    if quick {
        E18Sizes { dims: &[2, 3], loads: &[1, 2], steps: 2 }
    } else {
        E18Sizes { dims: &[2, 3, 4], loads: &[1, 2, 4], steps: 3 }
    }
}

/// The symbolic constant of E18's `O(load · log m)` congestion envelope.
/// Measured per-phase hot-edge utilization on the full grid sits at
/// `3–4.5 · load · log₂ m` (each host forwards ~`4·load` weighted guest
/// messages per phase, and Valiant spreads them over `Θ(log m)`-length
/// paths); 10 leaves ~2× headroom for routing noise while still failing
/// loudly if congestion ever turns polynomial in `m`.
const E18_C: f64 = 10.0;

fn e18() -> Experiment {
    Experiment {
        id: "E18",
        title: "Congestion telemetry: hot-edge utilization vs load factor",
        claim: "Engineering claim on the Thm 2.1 engine telemetry: with Valiant \
                routing, the per-phase utilization of the hottest host edge stays \
                within an O(load * log m) envelope as the load factor n/m scales \
                — at every load, the max-congestion curve keeps the O(log m) shape",
        grid_keys: &["dim", "load"],
        meta: |quick| {
            let s = e18_sizes(quick);
            vec![
                ("guest".into(), Value::Str("random-regular d=4, n = load*m".into())),
                ("guest_steps".into(), Value::UInt(s.steps as u64)),
                ("router".into(), Value::Str("butterfly-valiant".into())),
                ("congestion_c".into(), Value::Float(E18_C)),
            ]
        },
        grid: |quick| {
            let s = e18_sizes(quick);
            let mut points = Vec::new();
            for &dim in s.dims {
                for &load in s.loads {
                    points.push(GridPoint::new(vec![
                        ("dim", Value::UInt(dim as u64)),
                        ("load", Value::UInt(load)),
                        ("guest_steps", Value::UInt(s.steps as u64)),
                        ("seed", Value::UInt(0xE1800 + (dim as u64) * 16 + load)),
                    ]));
                }
            }
            points
        },
        run: |p| {
            use std::collections::BTreeMap;
            let dim = p.u64("dim") as usize;
            let load = p.u64("load");
            let steps = p.u64("guest_steps") as u32;
            let host = butterfly(dim);
            let m = host.n();
            let n = load as usize * m;
            let (guest, comp) = standard_guest(n, 0xE18);
            let router: SelectorRouter<ValiantButterfly> = presets::butterfly_valiant(dim);
            let mut rec = InMemoryRecorder::new();
            let wall_start = Instant::now();
            let run = Simulation::builder()
                .guest(&comp)
                .host(&host)
                .embedding(Embedding::block(guest.n(), host.n()))
                .router(&router)
                .steps(steps)
                .seed(p.u64("seed"))
                .threads(1) // the sweep itself shards across rows
                .recorder(&mut rec)
                .run()
                .expect("E18 configuration is valid");
            let wall_ms = wall_start.elapsed().as_secs_f64() * 1e3;
            assert_eq!(run.final_states, comp.run_final(steps), "states bit-for-bit");
            // Fold the per-(round, edge) telemetry into per-edge totals; the
            // hottest edge divided by the number of comm phases is the
            // measured per-phase congestion the envelope must dominate.
            let cells =
                rec.sample_data("sim.edge_util").expect("engine emits edge-utilization telemetry");
            let mut per_edge: BTreeMap<u64, u64> = BTreeMap::new();
            let mut comm_rounds = 0u64;
            for (&(round, edge), &v) in cells {
                *per_edge.entry(edge).or_insert(0) += v;
                comm_rounds = comm_rounds.max(round + 1);
            }
            let max_edge_total = per_edge.values().copied().max().unwrap_or(0);
            let max_edge_util = max_edge_total as f64 / steps as f64;
            let queue = rec.histogram_data("route.queue_occupancy");
            obj(vec![
                ("dim", Value::UInt(dim as u64)),
                ("load", Value::UInt(load)),
                ("guest_n", Value::UInt(n as u64)),
                ("host_m", Value::UInt(m as u64)),
                ("guest_steps", Value::UInt(steps as u64)),
                ("comm_rounds", Value::UInt(comm_rounds)),
                ("hot_edges", Value::UInt(per_edge.len() as u64)),
                ("max_edge_total", Value::UInt(max_edge_total)),
                ("max_edge_util", Value::Float(max_edge_util)),
                ("congestion_bound", Value::Float(E18_C * load as f64 * (m as f64).log2())),
                ("max_queue", Value::UInt(queue.map_or(0, |h| h.max))),
                ("mean_queue", Value::Float(queue.and_then(|h| h.mean()).unwrap_or(0.0))),
                ("wall_ms", Value::Float(wall_ms)),
            ])
        },
        shapes: || {
            vec![
                // The claim itself: measured per-phase hot-edge utilization
                // never escapes the O(load · log m) envelope (evaluated per
                // row, stored as congestion_bound).
                Shape::AtLeastColumn { y: "congestion_bound", floor: "max_edge_util" },
                // Structural invariant of the round schedule: an edge moves
                // at most one packet per comm round, so the hottest edge's
                // total cannot exceed the number of rounds.
                Shape::AtLeastColumn { y: "comm_rounds", floor: "max_edge_total" },
                // The queue telemetry agrees with itself: the mean occupancy
                // of non-empty queues cannot exceed the worst queue.
                Shape::AtLeastColumn { y: "max_queue", floor: "mean_queue" },
            ]
        },
    }
}

// --- E19: serving layer offered-load sweep ------------------------------

struct E19Sizes {
    guest_n: usize,
    dim: usize,
    steps: u32,
    requests: u64,
}

fn e19_sizes(quick: bool) -> E19Sizes {
    if quick {
        E19Sizes { guest_n: 96, dim: 3, steps: 4, requests: 10 }
    } else {
        E19Sizes { guest_n: 192, dim: 4, steps: 4, requests: 16 }
    }
}

/// `(label, workers, clients)` — one closed-loop offered-load point per
/// row. `w1-c4` is the saturation point for one worker; `w4-c4` offers the
/// same load to four workers.
const E19_CONFIGS: [(&str, u64, u64); 3] = [("w1-c1", 1, 1), ("w1-c4", 1, 4), ("w4-c4", 4, 4)];

fn e19() -> Experiment {
    Experiment {
        id: "E19",
        title: "Serving layer: closed-loop offered-load sweep over worker counts",
        claim: "Engineering claim on unet-serve: under a repeated closed-loop workload, \
                per-request wall time at saturation is ordered by worker count, p99 \
                latency stays bounded by the request deadline below the knee, the \
                shared route-plan cache hit ratio approaches 1, and no admitted \
                request is dropped across the graceful drain",
        grid_keys: &["config"],
        meta: |quick| {
            let s = e19_sizes(quick);
            vec![
                ("guest".into(), Value::Str(format!("ring:{}", s.guest_n))),
                ("host".into(), Value::Str(format!("butterfly:{}", s.dim))),
                ("guest_steps".into(), Value::UInt(s.steps as u64)),
                ("requests_per_client".into(), Value::UInt(s.requests)),
                ("protocol".into(), Value::Str(unet_serve::PROTOCOL.into())),
            ]
        },
        grid: |quick| {
            let s = e19_sizes(quick);
            E19_CONFIGS
                .iter()
                .map(|&(label, workers, clients)| {
                    GridPoint::new(vec![
                        ("config", Value::Str(label.into())),
                        ("workers", Value::UInt(workers)),
                        ("clients", Value::UInt(clients)),
                        ("guest_n", Value::UInt(s.guest_n as u64)),
                        ("dim", Value::UInt(s.dim as u64)),
                        ("guest_steps", Value::UInt(s.steps as u64)),
                        ("requests_per_client", Value::UInt(s.requests)),
                        // One seed for every client: the whole sweep is one
                        // repeated workload, so exactly one plan compile.
                        ("seed", Value::UInt(0xE19)),
                    ])
                })
                .collect()
        },
        run: |p| {
            let workers = p.u64("workers") as usize;
            let deadline_ms = ServeConfig::default().default_deadline_ms;
            // Each row runs its own server on an ephemeral port, so rows
            // are parallel-shard-safe like every other runner.
            let server =
                Server::start(ServeConfig { workers, queue_cap: 64, ..ServeConfig::default() })
                    .expect("bind 127.0.0.1:0");
            let report = loadgen::run(&LoadgenConfig {
                addr: server.addr().to_string(),
                clients: p.u64("clients") as usize,
                requests_per_client: p.u64("requests_per_client") as usize,
                batch: 1,
                guest: format!("ring:{}", p.u64("guest_n")),
                host: format!("butterfly:{}", p.u64("dim")),
                steps: p.u64("guest_steps") as u32,
                seed: p.u64("seed"),
                deadline_ms: None,
                warmup: true,
                shards: 1,
            })
            .expect("loadgen against a live server");
            let drained = server.drain();
            assert_eq!(report.completed, report.sent, "closed loop loses no request");
            assert_eq!(report.errors, 0, "no error responses at this load");
            obj(vec![
                ("config", Value::Str(p.str("config").into())),
                ("workers", Value::UInt(workers as u64)),
                ("clients", Value::UInt(p.u64("clients"))),
                ("requests", Value::UInt(report.sent as u64)),
                ("completed", Value::UInt(drained.stats.completed)),
                ("rejected", Value::UInt(drained.stats.rejected)),
                ("ms_per_req", Value::Float(report.wall_ms / report.sent.max(1) as f64)),
                ("p99_ms", Value::Float(report.percentile_ms(99.0).unwrap_or(0.0))),
                ("p99_cap_ms", Value::Float(deadline_ms as f64)),
                ("throughput_rps", Value::Float(report.throughput_rps())),
                ("hit_ratio", Value::Float(drained.stats.hit_ratio().unwrap_or(0.0))),
                ("hit_ratio_floor", Value::Float(0.9)),
                ("wall_ms", Value::Float(report.wall_ms)),
            ])
        },
        shapes: || {
            vec![
                // Saturation throughput ordered by worker count: four
                // workers serve the four-client load with less wall time
                // per request than one worker (loose factor, skipped below
                // the timing-noise floor like E17's ordering check).
                Shape::SpeedupOrdering {
                    key: "config",
                    fast: "w4-c4",
                    slow: "w1-c4",
                    wall: "ms_per_req",
                    factor: 1.75,
                    min_wall_ms: 2.0,
                },
                // Below the knee nothing times out: p99 stays under the
                // request deadline.
                Shape::AtLeastColumn { y: "p99_cap_ms", floor: "p99_ms" },
                // Repeated workload → hit ratio approaches 1 (one cold
                // compile, then every request replays the shared plan).
                Shape::AtLeastColumn { y: "hit_ratio", floor: "hit_ratio_floor" },
                // Zero dropped in-flight requests across the drain: the
                // server answered every request the clients sent.
                Shape::AtLeastColumn { y: "completed", floor: "requests" },
            ]
        },
    }
}

// --- E20: batched execution, offered load x batch size ------------------

struct E20Sizes {
    guest_n: usize,
    dim: usize,
    steps: u32,
    items_per_client: u64,
}

fn e20_sizes(quick: bool) -> E20Sizes {
    if quick {
        E20Sizes { guest_n: 96, dim: 3, steps: 4, items_per_client: 8 }
    } else {
        E20Sizes { guest_n: 192, dim: 4, steps: 4, items_per_client: 16 }
    }
}

/// `(label, clients, batch)` at a fixed four-worker pool. Each client
/// issues the same number of simulate *items*; the batch size only changes
/// how many ride one round trip, so `c1-b4` vs `c1-b1` isolates the win
/// from batched dispatch at equal workers and equal offered load.
const E20_CONFIGS: [(&str, u64, u64); 4] =
    [("c1-b1", 1, 1), ("c1-b4", 1, 4), ("c4-b1", 4, 1), ("c4-b4", 4, 4)];

/// Worker-pool size shared by every E20 row.
const E20_WORKERS: usize = 4;

fn e20() -> Experiment {
    Experiment {
        id: "E20",
        title: "Serving layer: batched execution across offered load x batch size",
        claim: "Engineering claim on unet-serve/3: grouping simulate items into batch \
                requests lets the worker pool execute them concurrently, so at equal \
                workers and equal offered load, batch >= 4 beats batch = 1 on wall time \
                per item; cold batches coalesce their route-plan build through the \
                single-flight cache (batchmates counted as followers), p99 round-trip \
                latency stays under the request deadline, and no item is lost",
        grid_keys: &["config"],
        meta: |quick| {
            let s = e20_sizes(quick);
            vec![
                ("guest".into(), Value::Str(format!("ring:{}", s.guest_n))),
                ("host".into(), Value::Str(format!("butterfly:{}", s.dim))),
                ("guest_steps".into(), Value::UInt(s.steps as u64)),
                ("items_per_client".into(), Value::UInt(s.items_per_client)),
                ("workers".into(), Value::UInt(E20_WORKERS as u64)),
                ("protocol".into(), Value::Str(unet_serve::PROTOCOL.into())),
            ]
        },
        grid: |quick| {
            let s = e20_sizes(quick);
            E20_CONFIGS
                .iter()
                .map(|&(label, clients, batch)| {
                    GridPoint::new(vec![
                        ("config", Value::Str(label.into())),
                        ("clients", Value::UInt(clients)),
                        ("batch", Value::UInt(batch)),
                        ("guest_n", Value::UInt(s.guest_n as u64)),
                        ("dim", Value::UInt(s.dim as u64)),
                        ("guest_steps", Value::UInt(s.steps as u64)),
                        ("items_per_client", Value::UInt(s.items_per_client)),
                        // One seed everywhere: one fingerprint, one plan
                        // compile, coalesced by the single-flight layer.
                        ("seed", Value::UInt(0xE20)),
                    ])
                })
                .collect()
        },
        run: |p| {
            let batch = p.u64("batch") as usize;
            let clients = p.u64("clients") as usize;
            let items = p.u64("items_per_client") * p.u64("clients");
            let deadline_ms = ServeConfig::default().default_deadline_ms;
            let server = Server::start(ServeConfig {
                workers: E20_WORKERS,
                queue_cap: 64,
                ..ServeConfig::default()
            })
            .expect("bind 127.0.0.1:0");
            // No warm-up: the cold first batch is part of the claim — its
            // plan build must coalesce, not multiply.
            let report = loadgen::run(&LoadgenConfig {
                addr: server.addr().to_string(),
                clients,
                requests_per_client: (p.u64("items_per_client") as usize) / batch,
                batch,
                guest: format!("ring:{}", p.u64("guest_n")),
                host: format!("butterfly:{}", p.u64("dim")),
                steps: p.u64("guest_steps") as u32,
                seed: p.u64("seed"),
                deadline_ms: None,
                warmup: false,
                shards: 1,
            })
            .expect("loadgen against a live server");
            let drained = server.drain();
            assert_eq!(report.sent as u64, items, "grid arithmetic covers every item");
            assert_eq!(report.errors, 0, "no error responses at this load");
            // Every cold batchmate must have ridden the leader's build.
            let followers_floor = if batch > 1 { batch as u64 - 1 } else { 0 };
            obj(vec![
                ("config", Value::Str(p.str("config").into())),
                ("workers", Value::UInt(E20_WORKERS as u64)),
                ("clients", Value::UInt(clients as u64)),
                ("batch", Value::UInt(batch as u64)),
                ("items", Value::UInt(items)),
                ("completed", Value::UInt(report.completed as u64)),
                ("ms_per_item", Value::Float(report.wall_ms / items.max(1) as f64)),
                ("p99_ms", Value::Float(report.percentile_ms(99.0).unwrap_or(0.0))),
                ("p99_cap_ms", Value::Float(deadline_ms as f64)),
                ("throughput_rps", Value::Float(report.throughput_rps())),
                ("singleflight_followers", Value::UInt(drained.stats.singleflight_followers)),
                ("followers_floor", Value::UInt(followers_floor)),
                ("wall_ms", Value::Float(report.wall_ms)),
            ])
        },
        shapes: || {
            vec![
                // The tentpole claim: at equal workers and equal offered
                // load, batched dispatch beats one-at-a-time round trips
                // (loose factor, skipped below the timing-noise floor).
                Shape::SpeedupOrdering {
                    key: "config",
                    fast: "c1-b4",
                    slow: "c1-b1",
                    wall: "ms_per_item",
                    factor: 1.75,
                    min_wall_ms: 2.0,
                },
                // Round-trip p99 stays under the request deadline.
                Shape::AtLeastColumn { y: "p99_cap_ms", floor: "p99_ms" },
                // Cold batchmates coalesce: each batch's plan build is
                // shared, counted via the single-flight follower counter.
                Shape::AtLeastColumn { y: "singleflight_followers", floor: "followers_floor" },
                // No item lost: every spec sent came back answered.
                Shape::AtLeastColumn { y: "completed", floor: "items" },
            ]
        },
    }
}

// --- E21: sharded serving tier, fingerprint-affine scale-out ------------

struct E21Sizes {
    guest_n: usize,
    dim: usize,
    steps: u32,
    clients: u64,
    requests: u64,
}

fn e21_sizes(quick: bool) -> E21Sizes {
    if quick {
        E21Sizes { guest_n: 96, dim: 3, steps: 4, clients: 4, requests: 4 }
    } else {
        E21Sizes { guest_n: 192, dim: 4, steps: 4, clients: 8, requests: 8 }
    }
}

/// `(label, shards)` — one `unet shard` deployment per row, every backend
/// with one worker so the shard count is the only parallelism knob.
const E21_CONFIGS: [(&str, u64); 3] = [("s1", 1), ("s2", 2), ("s4", 4)];

/// Cores available when a row is measured — recorded *into the row* so the
/// wall-clock scaling gate arms itself only where shards truly run in
/// parallel (a committed single-core artifact stays honest on any checker).
fn cores_now() -> u64 {
    std::thread::available_parallelism().map(|n| n.get() as u64).unwrap_or(1)
}

fn e21() -> Experiment {
    Experiment {
        id: "E21",
        title: "Sharded serving tier: fingerprint-affine scale-out across backend shards",
        claim: "Engineering claim on unet shard: consistent-hashing workload fingerprints \
                to backend shards preserves plan-cache locality through scale-out — each \
                shard absorbs exactly its share of a balanced closed-loop workload with \
                one cold compile, the global hit ratio stays within 5% of the \
                single-shard ratio for the same workload set, zero requests are lost or \
                failed over, and (given one core per shard plus one for the router) \
                4 shards sustain at least 3x the single-shard offered load",
        grid_keys: &["config"],
        meta: |quick| {
            let s = e21_sizes(quick);
            vec![
                ("guest".into(), Value::Str(format!("ring:{}", s.guest_n))),
                ("host".into(), Value::Str(format!("butterfly:{}", s.dim))),
                ("guest_steps".into(), Value::UInt(s.steps as u64)),
                ("clients".into(), Value::UInt(s.clients)),
                ("requests_per_client".into(), Value::UInt(s.requests)),
                ("workers_per_shard".into(), Value::UInt(1)),
                ("protocol".into(), Value::Str(unet_serve::PROTOCOL.into())),
            ]
        },
        grid: |quick| {
            let s = e21_sizes(quick);
            E21_CONFIGS
                .iter()
                .map(|&(label, shards)| {
                    GridPoint::new(vec![
                        ("config", Value::Str(label.into())),
                        ("shards", Value::UInt(shards)),
                        ("clients", Value::UInt(s.clients)),
                        ("guest_n", Value::UInt(s.guest_n as u64)),
                        ("dim", Value::UInt(s.dim as u64)),
                        ("guest_steps", Value::UInt(s.steps as u64)),
                        ("requests_per_client", Value::UInt(s.requests)),
                        // Base seed; the load generator searches upward from
                        // it for one fingerprint per shard, so every shard
                        // sees exactly one distinct workload.
                        ("seed", Value::UInt(0xE21)),
                    ])
                })
                .collect()
        },
        run: |p| {
            let shards = p.u64("shards") as usize;
            let clients = p.u64("clients") as usize;
            let requests = p.u64("requests_per_client");
            let deadline_ms = ServeConfig::default().default_deadline_ms;
            // One worker per backend: the shard count is the only
            // parallelism in the row. Everything runs in-process on
            // ephemeral ports, like E19/E20.
            let backends: Vec<Server> = (0..shards)
                .map(|_| {
                    Server::start(ServeConfig {
                        workers: 1,
                        queue_cap: 64,
                        ..ServeConfig::default()
                    })
                    .expect("bind backend on 127.0.0.1:0")
                })
                .collect();
            let router = ShardRouter::start(ShardConfig {
                backends: backends.iter().map(|b| b.addr().to_string()).collect(),
                workers: clients.max(2),
                ..ShardConfig::default()
            })
            .expect("bind router on 127.0.0.1:0");
            let report = loadgen::run(&LoadgenConfig {
                addr: router.addr().to_string(),
                clients,
                requests_per_client: requests as usize,
                batch: 1,
                guest: format!("ring:{}", p.u64("guest_n")),
                host: format!("butterfly:{}", p.u64("dim")),
                steps: p.u64("guest_steps") as u32,
                seed: p.u64("seed"),
                deadline_ms: None,
                warmup: true,
                shards,
            })
            .expect("loadgen against a live router");
            let router_drained = router.drain();
            let backend_drains: Vec<_> = backends.into_iter().map(Server::drain).collect();
            assert_eq!(report.completed, report.sent, "closed loop loses no request");
            assert_eq!(report.errors, 0, "no error responses at this load");
            // Per-shard simulate executions, counted by the one signal the
            // prober's metrics probes cannot inflate: plan-cache touches.
            let executed: Vec<u64> = backend_drains
                .iter()
                .map(|d| d.stats.shared_hits + d.stats.shared_misses)
                .collect();
            let min_shard = executed.iter().copied().min().unwrap_or(0);
            let hits: u64 = backend_drains.iter().map(|d| d.stats.shared_hits).sum();
            let misses: u64 = backend_drains.iter().map(|d| d.stats.shared_misses).sum();
            let hit_ratio = hits as f64 / (hits + misses).max(1) as f64;
            // The single-shard ratio for the same N distinct workloads is
            // C·R/(C·R + N) — one cold compile per workload either way.
            // Affinity means sharding adds no misses beyond that; 0.95 is
            // slack for a failover-induced recompile.
            let cr = (clients as u64 * requests) as f64;
            let single_shard_ratio = cr / (cr + shards as f64);
            obj(vec![
                ("config", Value::Str(p.str("config").into())),
                ("shards", Value::UInt(shards as u64)),
                ("clients", Value::UInt(clients as u64)),
                ("requests", Value::UInt(report.sent as u64)),
                ("completed", Value::UInt(report.completed as u64)),
                ("min_shard_executed", Value::UInt(min_shard)),
                // Exact per-shard share of the measured phase: the seed
                // search pins one workload per shard and clients spread
                // round-robin, so balance is arithmetic, not stochastic.
                ("balance_floor", Value::UInt(clients as u64 / shards as u64 * requests)),
                ("hit_ratio", Value::Float(hit_ratio)),
                ("hit_ratio_floor", Value::Float(0.95 * single_shard_ratio)),
                ("failovers", Value::UInt(router_drained.stats.failovers)),
                ("failover_cap", Value::UInt(0)),
                ("p99_ms", Value::Float(report.percentile_ms(99.0).unwrap_or(0.0))),
                ("p99_cap_ms", Value::Float(deadline_ms as f64)),
                ("ms_per_req", Value::Float(report.wall_ms / report.sent.max(1) as f64)),
                ("throughput_rps", Value::Float(report.throughput_rps())),
                ("wall_ms", Value::Float(report.wall_ms)),
                ("cores", Value::UInt(cores_now())),
                ("cores_needed", Value::UInt(shards as u64 + 1)),
            ])
        },
        shapes: || {
            vec![
                // The scale-out claim, armed only where the shards can
                // actually run in parallel (cores recorded per row).
                Shape::ThroughputScaling {
                    key: "config",
                    fast: "s4",
                    slow: "s1",
                    throughput: "throughput_rps",
                    factor: 3.0,
                    cores: "cores",
                    cores_needed: "cores_needed",
                },
                // Affinity keeps every shard's cache warm: the global hit
                // ratio stays within 5% of the single-shard ratio.
                Shape::AtLeastColumn { y: "hit_ratio", floor: "hit_ratio_floor" },
                // The balanced workload lands exactly (C/N)·R measured
                // requests on every shard — machine-independent.
                Shape::AtLeastColumn { y: "min_shard_executed", floor: "balance_floor" },
                // Healthy backends: nothing failed over.
                Shape::AtLeastColumn { y: "failover_cap", floor: "failovers" },
                // Below the knee nothing times out.
                Shape::AtLeastColumn { y: "p99_cap_ms", floor: "p99_ms" },
                // Zero lost requests through the router and the drain.
                Shape::AtLeastColumn { y: "completed", floor: "requests" },
            ]
        },
    }
}

// --- E22: request tracing, stage-span accounting under offered load -----

struct E22Sizes {
    guest_n: usize,
    dim: usize,
    steps: u32,
    requests: u64,
}

fn e22_sizes(quick: bool) -> E22Sizes {
    // Step counts are chosen so the simulate span dwarfs the fixed
    // per-request residue the spans cannot cover (the wire, syscalls, and
    // the client's own parse) — the 95% accounting gate needs service
    // time, not load.
    if quick {
        E22Sizes { guest_n: 96, dim: 3, steps: 256, requests: 4 }
    } else {
        E22Sizes { guest_n: 192, dim: 4, steps: 64, requests: 12 }
    }
}

/// `(label, clients, queue_share_floor)` — closed-loop offered load against
/// a one-worker server. `c1` is below capacity (no queue to speak of);
/// `c4` offers 4x the service rate, so nearly every request spends most of
/// its life in `queue_wait` — the dominance floor arms only there.
const E22_CONFIGS: [(&str, u64, f64); 3] = [("c1", 1, 0.0), ("c2", 2, 0.0), ("c4", 4, 0.5)];

fn e22() -> Experiment {
    Experiment {
        id: "E22",
        title: "Request tracing: stage spans account for end-to-end latency",
        claim: "Engineering claim on unet-serve/3 tracing: the per-request stage spans \
                the server returns (accept, queue_wait, batch_linger, singleflight_wait, \
                plan_build, simulate) account for at least 95% of the client-measured \
                end-to-end latency on every offered-load point, queue_wait becomes the \
                dominant stage once the closed-loop load crosses the one-worker \
                capacity, and the tail sampler keeps at least one request record \
                through the drain at the default head-sampling rate",
        grid_keys: &["config"],
        meta: |quick| {
            let s = e22_sizes(quick);
            vec![
                ("guest".into(), Value::Str(format!("ring:{}", s.guest_n))),
                ("host".into(), Value::Str(format!("butterfly:{}", s.dim))),
                ("guest_steps".into(), Value::UInt(s.steps as u64)),
                ("requests_per_client".into(), Value::UInt(s.requests)),
                ("workers".into(), Value::UInt(1)),
                ("protocol".into(), Value::Str(unet_serve::PROTOCOL.into())),
            ]
        },
        grid: |quick| {
            let s = e22_sizes(quick);
            E22_CONFIGS
                .iter()
                .map(|&(label, clients, queue_floor)| {
                    GridPoint::new(vec![
                        ("config", Value::Str(label.into())),
                        ("clients", Value::UInt(clients)),
                        ("queue_share_floor", Value::Float(queue_floor)),
                        ("guest_n", Value::UInt(s.guest_n as u64)),
                        ("dim", Value::UInt(s.dim as u64)),
                        ("guest_steps", Value::UInt(s.steps as u64)),
                        ("requests_per_client", Value::UInt(s.requests)),
                        // One seed for every client: one repeated workload,
                        // so plan_build shows up exactly once per row.
                        ("seed", Value::UInt(0xE22)),
                    ])
                })
                .collect()
        },
        run: |p| {
            let clients = p.u64("clients") as usize;
            // One executor, but a connection worker per client: every
            // connection is served concurrently, so the client count alone
            // decides whether the row sits below or beyond capacity and
            // the excess shows up as job-queue wait, not connection wait.
            let server = Server::start(ServeConfig {
                workers: 1,
                conn_workers: Some(8),
                queue_cap: 64,
                ..ServeConfig::default()
            })
            .expect("bind 127.0.0.1:0");
            let report = loadgen::run(&LoadgenConfig {
                addr: server.addr().to_string(),
                clients,
                requests_per_client: p.u64("requests_per_client") as usize,
                batch: 1,
                guest: format!("ring:{}", p.u64("guest_n")),
                host: format!("butterfly:{}", p.u64("dim")),
                steps: p.u64("guest_steps") as u32,
                seed: p.u64("seed"),
                deadline_ms: None,
                warmup: true,
                shards: 1,
            })
            .expect("loadgen against a live server");
            let drained = server.drain();
            assert_eq!(report.completed, report.sent, "closed loop loses no request");
            assert_eq!(report.errors, 0, "no error responses at this load");
            // The drained trace is the tail sampler's verdict: at the
            // default head rate with slow-tail keeps, a loaded row must
            // flush at least one request record.
            let sampled = unet_obs::trace::parse_trace(&drained.trace)
                .map(|doc| doc.requests.len() as u64)
                .unwrap_or(0);
            obj(vec![
                ("config", Value::Str(p.str("config").into())),
                ("clients", Value::UInt(clients as u64)),
                ("requests", Value::UInt(report.sent as u64)),
                ("completed", Value::UInt(drained.stats.completed)),
                ("span_coverage", Value::Float(report.span_coverage().unwrap_or(0.0))),
                ("coverage_floor", Value::Float(0.95)),
                ("queue_share", Value::Float(report.stage_share("queue_wait").unwrap_or(0.0))),
                ("queue_share_floor", Value::Float(p.f64("queue_share_floor"))),
                ("sampled_requests", Value::UInt(sampled)),
                ("sampled_floor", Value::UInt(1)),
                ("ms_per_req", Value::Float(report.wall_ms / report.sent.max(1) as f64)),
                ("wall_ms", Value::Float(report.wall_ms)),
            ])
        },
        shapes: || {
            vec![
                // The accounting claim: the server-side stage spans explain
                // (almost) all of the latency the client observed — the
                // wire, syscalls, and client parse are the only residue.
                Shape::AtLeastColumn { y: "span_coverage", floor: "coverage_floor" },
                // Past the knee the request's life is the queue: queue_wait
                // is the dominant stage on the over-capacity row (the floor
                // is 0 below the knee, so under-loaded rows gate trivially).
                Shape::AtLeastColumn { y: "queue_share", floor: "queue_share_floor" },
                // Tail sampling never goes dark: every row flushes at least
                // one request record through the drain.
                Shape::AtLeastColumn { y: "sampled_requests", floor: "sampled_floor" },
                // Zero lost requests, same closed-loop contract as E19.
                Shape::AtLeastColumn { y: "completed", floor: "requests" },
            ]
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_canonical() {
        let reg = registry();
        let ids: Vec<&str> = reg.iter().map(|e| e.id).collect();
        assert_eq!(ids, ["E1", "E2", "E16", "E17", "E18", "E19", "E20", "E21", "E22"]);
        for exp in &reg {
            assert!(!(exp.shapes)().is_empty(), "{} has no shape predicates", exp.id);
            for quick in [true, false] {
                let grid = (exp.grid)(quick);
                assert!(!grid.is_empty(), "{} has an empty grid", exp.id);
                // Grid keys identify points uniquely.
                let mut keys: Vec<String> = grid.iter().map(|p| p.key(exp.grid_keys)).collect();
                keys.sort();
                keys.dedup();
                assert_eq!(keys.len(), grid.len(), "{} grid keys collide", exp.id);
            }
        }
    }

    #[test]
    fn rows_embed_their_grid_keys_and_pass_their_shapes() {
        // Run the two cheapest grids end to end (E2 quick is numeric-only,
        // E16 quick exercises the degraded engine) and check the contract:
        // every row projects onto its grid point's key, and the rows
        // satisfy the experiment's own shape predicates.
        for exp in registry() {
            if exp.id != "E2" && exp.id != "E16" {
                continue;
            }
            let grid = (exp.grid)(true);
            let rows: Vec<Value> = grid.iter().map(|p| (exp.run)(p)).collect();
            for (p, row) in grid.iter().zip(&rows) {
                assert_eq!(
                    row_key(row, exp.grid_keys).as_deref(),
                    Some(p.key(exp.grid_keys).as_str()),
                    "{}: row does not embed its grid point",
                    exp.id
                );
            }
            for shape in (exp.shapes)() {
                shape.check(&rows).unwrap_or_else(|v| panic!("{}: {v}", exp.id));
            }
        }
    }

    #[test]
    fn e17_rows_agree_bit_for_bit() {
        let exp = e17();
        let grid = (exp.grid)(true);
        let rows: Vec<Value> = grid.iter().map(|p| (exp.run)(p)).collect();
        for shape in (exp.shapes)() {
            shape.check(&rows).unwrap_or_else(|v| panic!("E17: {v}"));
        }
        let h0 = rows[0].get("protocol_hash").and_then(Value::as_u64).unwrap();
        assert!(rows.iter().all(|r| r.get("protocol_hash").and_then(Value::as_u64) == Some(h0)));
    }

    #[test]
    fn e18_congestion_stays_inside_the_envelope() {
        let exp = e18();
        let grid = (exp.grid)(true);
        let rows: Vec<Value> = grid.iter().map(|p| (exp.run)(p)).collect();
        for (p, row) in grid.iter().zip(&rows) {
            assert_eq!(
                row_key(row, exp.grid_keys).as_deref(),
                Some(p.key(exp.grid_keys).as_str()),
                "E18: row does not embed its grid point"
            );
            let util = row.get("max_edge_util").and_then(Value::as_f64).unwrap();
            assert!(util > 0.0, "telemetry must see at least one transfer: {}", row.to_json());
        }
        for shape in (exp.shapes)() {
            shape.check(&rows).unwrap_or_else(|v| panic!("E18: {v}"));
        }
    }

    #[test]
    fn e19_rows_embed_keys_and_saturate_the_shared_cache() {
        let exp = e19();
        let grid = (exp.grid)(true);
        let rows: Vec<Value> = grid.iter().map(|p| (exp.run)(p)).collect();
        for (p, row) in grid.iter().zip(&rows) {
            assert_eq!(
                row_key(row, exp.grid_keys).as_deref(),
                Some(p.key(exp.grid_keys).as_str()),
                "E19: row does not embed its grid point"
            );
            let ratio = row.get("hit_ratio").and_then(Value::as_f64).unwrap();
            assert!(ratio > 0.9, "repeated workload must hit: {}", row.to_json());
        }
        for shape in (exp.shapes)() {
            shape.check(&rows).unwrap_or_else(|v| panic!("E19: {v}"));
        }
    }

    #[test]
    fn e20_batches_coalesce_and_lose_no_item() {
        let exp = e20();
        let grid = (exp.grid)(true);
        let rows: Vec<Value> = grid.iter().map(|p| (exp.run)(p)).collect();
        for (p, row) in grid.iter().zip(&rows) {
            assert_eq!(
                row_key(row, exp.grid_keys).as_deref(),
                Some(p.key(exp.grid_keys).as_str()),
                "E20: row does not embed its grid point"
            );
        }
        // The wall-time ordering shape may be skipped under the noise
        // floor, but the follower and completeness claims are exact.
        for shape in (exp.shapes)() {
            shape.check(&rows).unwrap_or_else(|v| panic!("E20: {v}"));
        }
        let b4 = rows
            .iter()
            .find(|r| r.get("config").and_then(Value::as_str) == Some("c1-b4"))
            .expect("c1-b4 row");
        assert!(
            b4.get("singleflight_followers").and_then(Value::as_u64).unwrap() >= 3,
            "a cold batch of 4 must ride one plan build: {}",
            b4.to_json()
        );
    }

    #[test]
    fn e21_shards_stay_balanced_warm_and_lossless() {
        let exp = e21();
        let grid = (exp.grid)(true);
        let rows: Vec<Value> = grid.iter().map(|p| (exp.run)(p)).collect();
        for (p, row) in grid.iter().zip(&rows) {
            assert_eq!(
                row_key(row, exp.grid_keys).as_deref(),
                Some(p.key(exp.grid_keys).as_str()),
                "E21: row does not embed its grid point"
            );
        }
        // The throughput-scaling shape may disarm on a small machine, but
        // balance, hit ratio, failover and completeness gates are exact.
        for shape in (exp.shapes)() {
            shape.check(&rows).unwrap_or_else(|v| panic!("E21: {v}"));
        }
        let s4 = rows
            .iter()
            .find(|r| r.get("config").and_then(Value::as_str) == Some("s4"))
            .expect("s4 row");
        assert_eq!(
            s4.get("failovers").and_then(Value::as_u64),
            Some(0),
            "healthy shards never fail over: {}",
            s4.to_json()
        );
        // Affinity held: exactly one cold compile per shard, so the global
        // ratio equals the single-shard ideal for the same workload set.
        let ratio = s4.get("hit_ratio").and_then(Value::as_f64).unwrap();
        let floor = s4.get("hit_ratio_floor").and_then(Value::as_f64).unwrap();
        assert!(ratio >= floor, "sharded hit ratio {ratio} under floor {floor}");
    }

    #[test]
    fn e22_spans_account_for_latency_and_queueing_dominates_past_the_knee() {
        let exp = e22();
        let grid = (exp.grid)(true);
        let rows: Vec<Value> = grid.iter().map(|p| (exp.run)(p)).collect();
        for (p, row) in grid.iter().zip(&rows) {
            assert_eq!(
                row_key(row, exp.grid_keys).as_deref(),
                Some(p.key(exp.grid_keys).as_str()),
                "E22: row does not embed its grid point"
            );
        }
        // Coverage, queue dominance, sampling, and completeness gates are
        // all machine-independent ratios or exact counts — none disarm.
        for shape in (exp.shapes)() {
            shape.check(&rows).unwrap_or_else(|v| panic!("E22: {v}"));
        }
        let c4 = rows
            .iter()
            .find(|r| r.get("config").and_then(Value::as_str) == Some("c4"))
            .expect("c4 row");
        let queue = c4.get("queue_share").and_then(Value::as_f64).unwrap();
        assert!(queue >= 0.5, "past the knee the queue is the request's life: {}", c4.to_json());
    }

    #[test]
    fn fnv1a_is_stable_and_sensitive() {
        assert_eq!(fnv1a([]), 0xcbf29ce484222325);
        assert_ne!(fnv1a(*b"protocol"), fnv1a(*b"protocoL"));
    }

    #[test]
    fn grid_point_key_is_order_insensitive_to_extras() {
        let a = GridPoint::new(vec![("dim", Value::UInt(3)), ("seed", Value::UInt(7))]);
        let b = GridPoint::new(vec![
            ("dim", Value::UInt(3)),
            ("seed", Value::UInt(99)), // non-key params don't matter
        ]);
        assert_eq!(a.key(&["dim"]), b.key(&["dim"]));
        assert_ne!(a.key(&["dim", "seed"]), b.key(&["dim", "seed"]));
    }
}
