//! Fault injection and degraded-mode simulation for universal parallel
//! networks.
//!
//! The paper's universality results (Theorems 2.1 and 3.1) assume a healthy
//! host. This crate asks what survives when the host degrades:
//!
//! * [`plan`] — seeded, deterministic [`FaultPlan`]s: crash-stop node
//!   faults, permanent link cuts, transient link flaps with repair times,
//!   and spatially correlated ("rack fire") failures.
//! * [`view`] — [`FaultyView`], a time-evolving live view over any base
//!   [`Graph`](unet_topology::Graph); composes with every generator in
//!   `unet-topology`.
//! * [`route`] — fault-aware routing: canonical paths validated against the
//!   live view with BFS rerouting fallback, surfacing delivered / dropped /
//!   retried counts through `unet-obs`.
//! * [`degraded`] — [`DegradedSimulator`]: the embedding simulator with
//!   host-death handling (re-embedding plus pebble replay from surviving
//!   representatives), emitting ordinary pebble protocols that
//!   `unet_pebble::check` certifies end-to-end.

#![deny(missing_docs)]

pub mod degraded;
pub mod plan;
pub mod route;
pub mod view;

pub use degraded::{DegradedError, DegradedRun, DegradedSimulator, DegradedTuning};
pub use plan::{FaultEvent, FaultKind, FaultPlan};
pub use route::{route_faulty, route_faulty_recorded, FaultyOutcome};
pub use view::{AppliedFault, FaultyView};
