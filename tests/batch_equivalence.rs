//! Batched execution must be observationally equivalent to per-request
//! execution: the same specs sent as one `batch` request produce the same
//! stats — bit-for-bit, wall time aside — as sending them one at a time
//! to a fresh server, including the shared-cache hit pattern (the first
//! occurrence of each workload fingerprint is the one plan build), error
//! isolation (a bad spec fails only its own slot), and mid-batch
//! cancellation (an expired deadline cancels only its own item).

use proptest::prelude::*;
use universal_networks::serve::client::Client;
use universal_networks::serve::protocol::SimulateReq;
use universal_networks::serve::{ClientError, ServeConfig, Server, SimulateResult};

const GUESTS: [&str; 3] = ["ring:12", "ring:16", "ring:24"];
const HOSTS: [&str; 2] = ["torus:2x2", "torus:3x3"];

fn spec(guest_i: usize, host_i: usize, steps: u32, seed: u64) -> SimulateReq {
    SimulateReq {
        guest: GUESTS[guest_i % GUESTS.len()].into(),
        host: HOSTS[host_i % HOSTS.len()].into(),
        steps,
        seed,
        deadline_ms: None,
        id: None,
    }
}

fn fresh_server() -> Server {
    Server::start(ServeConfig { workers: 2, queue_cap: 32, ..ServeConfig::default() })
        .expect("bind 127.0.0.1:0")
}

/// The deterministic projection of a result: every stat except wall time.
fn stats(r: &SimulateResult) -> (u64, u64, u64, f64, f64, bool, bool) {
    (
        r.host_steps,
        r.comm_steps,
        r.compute_steps,
        r.slowdown,
        r.inefficiency,
        r.shared_cache_hit,
        r.verified,
    )
}

/// Run each spec as its own `simulate` request against a fresh server, in
/// order — the reference execution a batch must reproduce.
fn run_per_request(specs: &[SimulateReq]) -> Vec<Result<SimulateResult, (String, String)>> {
    let server = fresh_server();
    let mut client = Client::connect(&server.addr().to_string()).expect("connect");
    let out = specs
        .iter()
        .map(|s| match client.simulate(s) {
            Ok(r) => Ok(r),
            Err(ClientError::Server(e)) => Err((e.code, e.message)),
            Err(e) => panic!("per-request transport failed: {e}"),
        })
        .collect();
    drop(client);
    server.drain();
    out
}

/// Run the same specs as one `batch` request against a fresh server.
fn run_batched(specs: &[SimulateReq]) -> Vec<Result<SimulateResult, (String, String)>> {
    let server = fresh_server();
    let mut client = Client::connect(&server.addr().to_string()).expect("connect");
    let out = client
        .simulate_batch(specs, None)
        .expect("batch round trip")
        .into_iter()
        .map(|item| item.map_err(|e| (e.code, e.message)))
        .collect();
    drop(client);
    server.drain();
    out
}

fn assert_equivalent(specs: &[SimulateReq]) {
    let solo = run_per_request(specs);
    let batched = run_batched(specs);
    assert_eq!(solo.len(), batched.len());
    for (i, (s, b)) in solo.iter().zip(&batched).enumerate() {
        match (s, b) {
            (Ok(sr), Ok(br)) => assert_eq!(
                stats(sr),
                stats(br),
                "item {i} ({} on {}): batched stats diverge from per-request",
                specs[i].guest,
                specs[i].host
            ),
            (Err(se), Err(be)) => {
                assert_eq!(se.0, be.0, "item {i}: error codes diverge");
            }
            _ => panic!("item {i}: one side succeeded, the other failed: {s:?} vs {b:?}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random workload mixes — duplicate fingerprints and all — come back
    /// with identical stats whether batched or sent one at a time.
    #[test]
    fn batched_equals_per_request(
        items in prop::collection::vec((0usize..3, 0usize..2, 1u32..4, 0u64..3), 1..6),
    ) {
        let specs: Vec<SimulateReq> =
            items.iter().map(|&(g, h, t, s)| spec(g, h, t, s)).collect();
        assert_equivalent(&specs);
    }
}

#[test]
fn repeated_fingerprint_hit_pattern_matches() {
    // Three copies of one workload plus one distinct: exactly the first
    // occurrence of each fingerprint misses, batched or not.
    let specs = vec![spec(0, 0, 2, 7), spec(0, 0, 2, 7), spec(1, 1, 2, 7), spec(0, 0, 2, 7)];
    let batched = run_batched(&specs);
    let hits: Vec<bool> =
        batched.iter().map(|r| r.as_ref().expect("all valid").shared_cache_hit).collect();
    assert_eq!(hits, [false, true, false, true], "leader-first coalescing per fingerprint");
    assert_equivalent(&specs);
}

#[test]
fn bad_spec_mid_batch_isolates_like_per_request() {
    let mut bad = spec(0, 0, 2, 1);
    bad.guest = "blah:9".into();
    let specs = vec![spec(0, 0, 2, 1), bad, spec(1, 1, 2, 1)];
    assert_equivalent(&specs);
}

#[test]
fn expired_deadline_mid_batch_cancels_only_its_item() {
    let mut doomed = spec(1, 1, 3, 5);
    doomed.deadline_ms = Some(0);
    let specs = vec![spec(0, 0, 2, 5), doomed, spec(0, 0, 2, 5)];
    let solo = run_per_request(&specs);
    let batched = run_batched(&specs);
    for (label, side) in [("per-request", &solo), ("batched", &batched)] {
        assert!(side[0].is_ok(), "{label}: item 0 unaffected");
        assert_eq!(
            side[1].as_ref().err().map(|e| e.0.as_str()),
            Some("deadline-exceeded"),
            "{label}: expired item cancelled"
        );
        assert!(side[2].is_ok(), "{label}: item 2 unaffected");
    }
    assert_eq!(
        stats(solo[2].as_ref().unwrap()),
        stats(batched[2].as_ref().unwrap()),
        "survivors keep bit-for-bit stats"
    );
}
