//! Deterministic closed-loop load generator.
//!
//! `clients` concurrent connections each issue `requests_per_client`
//! identical round trips back-to-back (closed loop: the next request
//! leaves only after the previous response arrives). Each round trip
//! carries `batch` simulate specs — 1 sends a plain `simulate` request,
//! more sends one `batch` request — so offered load in *items* is
//! `clients × requests_per_client × batch`. The item count and workload
//! are fully deterministic — only wall-clock latency varies — which is
//! what the E19/E20 offered-load sweeps need: saturation throughput
//! ordered by worker count and batch size, with the shared route-plan
//! cache absorbing every repeat of the workload.
//!
//! An optional warm-up request is issued before the clients start so the
//! one unavoidable shared-cache miss happens deterministically up front
//! (`hit_ratio = R·C / (R·C + 1)` on a repeated workload with `batch = 1`).
//!
//! When driving a `unet shard` router, set [`LoadgenConfig::shards`] to
//! the ring size: the generator derives one seed per shard — the smallest
//! seeds at or above `seed` whose workload fingerprints home to each shard
//! on the same [`Ring`] the router uses — and spreads
//! clients round-robin across those seeds. Offered load is then *exactly*
//! balanced per shard (no stochastic consistent-hash skew), each shard's
//! plan cache sees exactly one distinct workload, and the warm-up issues
//! one request per seed so every shard's unavoidable miss happens up
//! front: `hit_ratio = R·C / (R·C + N)` globally for `N` shards.

use std::io;
use std::time::Instant;

use crate::client::Client;
use crate::protocol::{
    batch_request_line, parse_response, simulate_request_line, Response, SimulateReq,
};
use crate::ring::Ring;
use crate::router::simulate_fingerprint;
use unet_obs::json::Value;

/// Load-generator configuration.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address (`host:port`).
    pub addr: String,
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Round trips each client issues.
    pub requests_per_client: usize,
    /// Simulate specs per round trip (1 = plain `simulate` requests,
    /// ≥ 2 = `batch` requests).
    pub batch: usize,
    /// Guest graph spec.
    pub guest: String,
    /// Host graph spec.
    pub host: String,
    /// Guest steps per item.
    pub steps: u32,
    /// Seed (identical across items — that is the point: a repeated
    /// workload exercises the shared plan cache).
    pub seed: u64,
    /// Per-request deadline override.
    pub deadline_ms: Option<u64>,
    /// Issue one warm-up request before the clients start (one per
    /// distinct seed when `shards > 1`).
    pub warmup: bool,
    /// Ring size of the `unet shard` router being driven (1 = a plain
    /// server). Values above 1 switch the generator to one
    /// fingerprint-searched seed per shard with clients spread
    /// round-robin, so per-shard offered load is exactly balanced.
    pub shards: usize,
}

/// What a load-generator run measured.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Simulate items issued (including the warm-up when enabled).
    pub sent: usize,
    /// Items answered successfully.
    pub completed: usize,
    /// Items rejected with `overloaded`.
    pub rejected: usize,
    /// Items answered with `error` (or a failed batch slot) or lost to
    /// I/O failures.
    pub errors: usize,
    /// Wall time of the measured (post-warm-up) phase in milliseconds.
    pub wall_ms: f64,
    /// Per-round-trip latencies in milliseconds, sorted ascending
    /// (warm-up excluded). A batch round trip is one sample.
    pub latencies_ms: Vec<f64>,
}

impl LoadgenReport {
    /// Mean round-trip latency (`None` when nothing completed).
    pub fn mean_ms(&self) -> Option<f64> {
        if self.latencies_ms.is_empty() {
            None
        } else {
            Some(self.latencies_ms.iter().sum::<f64>() / self.latencies_ms.len() as f64)
        }
    }

    /// Nearest-rank latency percentile, `p` in `[0, 100]`.
    pub fn percentile_ms(&self, p: f64) -> Option<f64> {
        if self.latencies_ms.is_empty() {
            return None;
        }
        let idx = ((p / 100.0) * (self.latencies_ms.len() - 1) as f64).round() as usize;
        Some(self.latencies_ms[idx.min(self.latencies_ms.len() - 1)])
    }

    /// Completed items per second over the measured phase.
    pub fn throughput_rps(&self) -> f64 {
        if self.wall_ms <= 0.0 {
            0.0
        } else {
            self.completed as f64 / (self.wall_ms / 1e3)
        }
    }
}

/// Outcome counters of a single client's closed loop.
#[derive(Debug, Default)]
struct ClientTally {
    completed: usize,
    rejected: usize,
    errors: usize,
    latencies_ms: Vec<f64>,
}

/// Classify one response line into per-item outcome counts.
fn tally_response(tally: &mut ClientTally, response: &str, items: usize) -> TallyKind {
    match parse_response(response.trim()) {
        Ok(Response::Result(v)) => {
            match v.get("items").and_then(Value::as_arr) {
                Some(arr) => {
                    for item in arr {
                        if item.get("ok").and_then(Value::as_bool) == Some(true) {
                            tally.completed += 1;
                        } else {
                            tally.errors += 1;
                        }
                    }
                }
                None => tally.completed += items,
            }
            TallyKind::Result
        }
        Ok(Response::Overloaded { .. }) => {
            tally.rejected += items;
            TallyKind::Overloaded
        }
        Ok(Response::Error { .. }) | Err(_) => {
            tally.errors += items;
            TallyKind::Error
        }
    }
}

enum TallyKind {
    Result,
    Overloaded,
    Error,
}

fn run_client(addr: &str, line: &str, requests: usize, items: usize) -> ClientTally {
    let mut tally = ClientTally::default();
    let mut client: Option<Client> = None;
    for _ in 0..requests {
        if client.is_none() {
            match Client::connect(addr) {
                Ok(c) => client = Some(c),
                Err(_) => {
                    tally.errors += items;
                    continue;
                }
            }
        }
        let conn = client.as_mut().expect("connected above");
        let started = Instant::now();
        match conn.request_raw(line) {
            Ok(response) => match tally_response(&mut tally, &response, items) {
                TallyKind::Result => {
                    tally.latencies_ms.push(started.elapsed().as_secs_f64() * 1e3);
                }
                // The server answers overloaded before reading and drops
                // the connection; reconnect and keep going.
                TallyKind::Overloaded => client = None,
                TallyKind::Error => {}
            },
            Err(_) => {
                tally.errors += items;
                client = None; // reconnect and keep going
            }
        }
    }
    tally
}

/// The spec a client driving seed `seed` repeats.
fn spec_for_seed(cfg: &LoadgenConfig, seed: u64) -> SimulateReq {
    SimulateReq {
        guest: cfg.guest.clone(),
        host: cfg.host.clone(),
        steps: cfg.steps,
        seed,
        deadline_ms: cfg.deadline_ms,
        id: None,
    }
}

/// One seed per shard, indexed by home shard: the smallest seeds at or
/// above `cfg.seed` whose workload fingerprints land on each shard of
/// `Ring::new(shards)`. Deterministic (pure search, no clock or RNG), so
/// repeated runs offer the identical per-shard workload. Expected search
/// length is `N·H_N` seeds for `N` shards — a handful. Falls back to
/// `cfg.seed` everywhere if the spec cannot be fingerprinted (the run
/// will produce typed errors regardless of placement).
fn seeds_for_shards(cfg: &LoadgenConfig, shards: usize) -> Vec<u64> {
    if shards <= 1 {
        return vec![cfg.seed];
    }
    let ring = Ring::new(shards);
    let mut seeds: Vec<Option<u64>> = vec![None; shards];
    let mut found = 0usize;
    for delta in 0..100_000u64 {
        let seed = cfg.seed.wrapping_add(delta);
        match simulate_fingerprint(&spec_for_seed(cfg, seed)) {
            Ok(fp) => {
                let shard = ring.shard_of(fp);
                if seeds[shard].is_none() {
                    seeds[shard] = Some(seed);
                    found += 1;
                    if found == shards {
                        break;
                    }
                }
            }
            Err(_) => break,
        }
    }
    seeds.into_iter().map(|s| s.unwrap_or(cfg.seed)).collect()
}

/// Run the closed loop and aggregate every client's tally.
pub fn run(cfg: &LoadgenConfig) -> io::Result<LoadgenReport> {
    let batch = cfg.batch.max(1);
    let seeds = seeds_for_shards(cfg, cfg.shards.max(1));
    let lines: Vec<String> = seeds
        .iter()
        .map(|&seed| {
            let spec = spec_for_seed(cfg, seed);
            if batch == 1 {
                simulate_request_line(&spec)
            } else {
                batch_request_line(&vec![spec; batch], cfg.deadline_ms, None)
            }
        })
        .collect();
    let mut sent = 0usize;
    let mut warm_completed = 0usize;
    let mut warm_errors = 0usize;
    if cfg.warmup {
        // One warm-up per distinct seed: every shard takes its one
        // unavoidable plan-cache miss before the measured phase starts.
        for &seed in &seeds {
            sent += 1;
            let warm_line = simulate_request_line(&spec_for_seed(cfg, seed));
            let outcome = Client::connect(&cfg.addr).and_then(|mut c| c.request_raw(&warm_line));
            match outcome {
                Ok(resp) => match parse_response(resp.trim()) {
                    Ok(Response::Result(_)) => warm_completed += 1,
                    _ => warm_errors += 1,
                },
                Err(_) => warm_errors += 1,
            }
        }
    }
    let started = Instant::now();
    let tallies: Vec<ClientTally> = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.clients)
            .map(|i| {
                let addr = &cfg.addr;
                let line = &lines[i % lines.len()];
                s.spawn(move |_| run_client(addr, line, cfg.requests_per_client, batch))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client panicked")).collect()
    })
    .expect("loadgen scope");
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    sent += cfg.clients * cfg.requests_per_client * batch;
    let mut report = LoadgenReport {
        sent,
        completed: warm_completed,
        rejected: 0,
        errors: warm_errors,
        wall_ms,
        latencies_ms: Vec::new(),
    };
    for t in tallies {
        report.completed += t.completed;
        report.rejected += t.rejected;
        report.errors += t.errors;
        report.latencies_ms.extend(t.latencies_ms);
    }
    report.latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_nearest_rank() {
        let report = LoadgenReport {
            sent: 4,
            completed: 4,
            rejected: 0,
            errors: 0,
            wall_ms: 100.0,
            latencies_ms: vec![1.0, 2.0, 3.0, 10.0],
        };
        assert_eq!(report.percentile_ms(0.0), Some(1.0));
        assert_eq!(report.percentile_ms(50.0), Some(3.0));
        assert_eq!(report.percentile_ms(100.0), Some(10.0));
        assert_eq!(report.mean_ms(), Some(4.0));
        assert_eq!(report.throughput_rps(), 40.0);
    }

    #[test]
    fn empty_report_has_no_percentiles() {
        let report = LoadgenReport {
            sent: 0,
            completed: 0,
            rejected: 0,
            errors: 0,
            wall_ms: 0.0,
            latencies_ms: Vec::new(),
        };
        assert_eq!(report.percentile_ms(99.0), None);
        assert_eq!(report.mean_ms(), None);
        assert_eq!(report.throughput_rps(), 0.0);
    }

    #[test]
    fn shard_seed_search_balances_every_shard() {
        let cfg = LoadgenConfig {
            addr: String::new(),
            clients: 8,
            requests_per_client: 4,
            batch: 1,
            guest: "ring:12".into(),
            host: "torus:2x2".into(),
            steps: 2,
            seed: 0xE21,
            deadline_ms: None,
            warmup: true,
            shards: 4,
        };
        let seeds = seeds_for_shards(&cfg, 4);
        assert_eq!(seeds.len(), 4);
        let ring = Ring::new(4);
        for (shard, &seed) in seeds.iter().enumerate() {
            let fp = simulate_fingerprint(&spec_for_seed(&cfg, seed)).expect("fingerprintable");
            assert_eq!(ring.shard_of(fp), shard, "seed {seed} homes to its shard");
        }
        let mut distinct = seeds.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(distinct.len(), 4, "one distinct seed per shard: {seeds:?}");
        // Deterministic and degenerate-safe.
        assert_eq!(seeds, seeds_for_shards(&cfg, 4));
        assert_eq!(seeds_for_shards(&cfg, 1), vec![0xE21]);
    }

    #[test]
    fn batch_responses_tally_per_item() {
        let mut tally = ClientTally::default();
        let line = "{\"proto\":\"unet-serve/2\",\"kind\":\"result\",\"req\":\"batch\",\
                    \"items\":[{\"ok\":true},{\"ok\":false,\"code\":\"bad-spec\",\
                    \"message\":\"x\"},{\"ok\":true}]}";
        assert!(matches!(tally_response(&mut tally, line, 3), TallyKind::Result));
        assert_eq!((tally.completed, tally.errors, tally.rejected), (2, 1, 0));
    }
}
