//! Cross-crate integration: guest → embedding → routing → pebble protocol →
//! checker → lower-bound analyses, end to end.

use universal_networks::core::prelude::*;
use universal_networks::core::routers::OfflineBenesRouter;
use universal_networks::pebble::check;
use universal_networks::routing::benes::benes_network;
use universal_networks::topology::generators::*;
use universal_networks::topology::util::seeded_rng;
use universal_networks::topology::Graph;

/// Simulate `guest` on `host` and certify everything; returns slowdown.
fn simulate_and_certify(
    guest: &Graph,
    host: &Graph,
    embedding: Embedding,
    router: &dyn universal_networks::core::Router,
    steps: u32,
    seed: u64,
) -> f64 {
    let comp = GuestComputation::random(guest.clone(), seed);
    let run = Simulation::builder()
        .guest(&comp)
        .host(host)
        .embedding(embedding)
        .router(router)
        .steps(steps)
        .seed(seed ^ 1)
        .run()
        .expect("configuration is valid");
    let v = verify_run(&comp, host, &run, steps).expect("simulation certifies");
    assert!(v.metrics.slowdown >= bounds::load_bound(guest.n(), host.n()));
    v.metrics.slowdown
}

#[test]
fn every_classic_guest_simulates_on_butterfly() {
    let host = butterfly(3); // m = 32
    let router = presets::butterfly_valiant(3);
    let guests: Vec<(&str, Graph)> = vec![
        ("ring", ring(64)),
        ("torus", torus(8, 8)),
        ("ccc", cube_connected_cycles(4)),
        ("shuffle-exchange", shuffle_exchange(6)),
        ("de-bruijn", de_bruijn(6)),
        ("x-tree", x_tree(5)),
        ("random-regular", random_regular(64, 4, &mut seeded_rng(1))),
    ];
    for (name, guest) in guests {
        let n = guest.n();
        let s = simulate_and_certify(&guest, &host, Embedding::block(n, 32), &router, 3, 0xabc);
        assert!(s.is_finite(), "{name}");
    }
}

#[test]
fn every_classic_host_simulates_the_same_guest() {
    let guest = random_regular(128, 4, &mut seeded_rng(2));
    let hosts: Vec<(&str, Graph)> = vec![
        ("torus", torus(4, 4)),
        ("mesh", mesh(4, 4)),
        ("ring", ring(16)),
        ("expander", random_hamiltonian_union(16, 2, &mut seeded_rng(3))),
        ("binary-tree", binary_tree(3)),
        ("shuffle-exchange", shuffle_exchange(4)),
    ];
    let router = presets::bfs();
    for (name, host) in hosts {
        let m = host.n();
        let s = simulate_and_certify(&guest, &host, Embedding::block(128, m), &router, 2, 0xdef);
        assert!(s >= 8.0, "{name}: slowdown {s} below load 8");
    }
}

#[test]
fn benes_host_with_offline_routing_end_to_end() {
    let dim = 4;
    let host = benes_network(dim); // m = 128, guests on the 16 column-0 rows
    let n = 64;
    let guest = random_regular(n, 4, &mut seeded_rng(4));
    let f: Vec<u32> = (0..n).map(|i| (i * 16 / n) as u32).collect();
    let router = OfflineBenesRouter { dim };
    let s = simulate_and_certify(&guest, &host, Embedding::new(f, host.n()), &router, 3, 0x777);
    assert!(s.is_finite());
}

#[test]
fn slowdown_improves_with_host_size() {
    // Same guest, butterflies of increasing size: slowdown must decrease
    // (more processors, same work).
    let n = 512;
    let guest = random_regular(n, 4, &mut seeded_rng(5));
    let mut prev = f64::INFINITY;
    for dim in 2..=4usize {
        let host = butterfly(dim);
        let router = presets::butterfly_valiant(dim);
        let s =
            simulate_and_certify(&guest, &host, Embedding::block(n, host.n()), &router, 2, 0x123);
        assert!(s < prev, "dim {dim}: slowdown {s} ≥ previous {prev}");
        prev = s;
    }
}

#[test]
fn identity_simulation_costs_only_constant_overhead() {
    // Simulating a torus on itself with the locality embedding: slowdown is
    // a small constant (communication only with adjacent hosts).
    let guest = torus(8, 8);
    let host = torus(8, 8);
    let router = presets::torus_xy(8, 8);
    let s = simulate_and_certify(&guest, &host, Embedding::grid_tiles(8, 8), &router, 3, 0x9);
    // Each guest exchanges with 4 adjacent hosts; the one-op-per-step pebble
    // model serializes the 4 receives and the coloring splits engine steps,
    // so the constant is ≈ 2·(c + recv) + 1 ≈ 20, independent of n.
    assert!(s <= 24.0, "identity-ish simulation slowdown {s} too large");
}

#[test]
fn locality_beats_random_embedding_on_mesh_guest() {
    let guest = torus(16, 16);
    let host = torus(4, 4);
    let router = presets::torus_xy(4, 4);
    let comp = GuestComputation::random(guest.clone(), 6);
    let builder = |embedding: Embedding, seed: u64| {
        Simulation::builder()
            .guest(&comp)
            .host(&host)
            .embedding(embedding)
            .router(&router)
            .steps(2)
            .seed(seed)
            .run()
            .expect("configuration is valid")
    };
    let run_t = builder(Embedding::grid_tiles(16, 4), 8);
    let run_r = builder(Embedding::random(256, 16, &mut seeded_rng(7)), 9);
    verify_run(&comp, &host, &run_t, 2).unwrap();
    verify_run(&comp, &host, &run_r, 2).unwrap();
    assert!(
        run_t.slowdown() < run_r.slowdown(),
        "locality {} should beat random {}",
        run_t.slowdown(),
        run_r.slowdown()
    );
}

#[test]
fn universality_composes() {
    // Two-level simulation: a guest on host1, then host1 (as a guest
    // network running its own computation) on host2. Universality is
    // transitive; the composed slowdown is ≈ the product of the levels'
    // slowdowns — each host1 step becomes ≈ s2 host2 steps.
    let guest = ring(64);
    let host1 = torus(4, 4);
    let host2 = torus(2, 2);
    let comp = GuestComputation::random(guest.clone(), 0xC0);
    let router1 = presets::torus_xy(4, 4);
    let run1 = Simulation::builder()
        .guest(&comp)
        .host(&host1)
        .embedding(Embedding::block(64, 16))
        .router(&router1)
        .steps(2)
        .seed(1)
        .run()
        .expect("level-1 configuration is valid");
    verify_run(&comp, &host1, &run1, 2).unwrap();
    let s1 = run1.slowdown();
    let t1 = run1.protocol.host_steps() as u32;

    // Level 2: host1 itself as a guest running t1 steps of some computation.
    let comp2 = GuestComputation::random(host1.clone(), 0xC1);
    let router2 = presets::torus_xy(2, 2);
    let run2 = Simulation::builder()
        .guest(&comp2)
        .host(&host2)
        .embedding(Embedding::block(16, 4))
        .router(&router2)
        .steps(t1)
        .seed(2)
        .run()
        .expect("level-2 configuration is valid");
    verify_run(&comp2, &host2, &run2, t1).unwrap();
    let s2 = run2.slowdown();

    // Composed: T guest steps cost t1·s2 host2 steps = T·s1·s2.
    let composed = run2.protocol.host_steps() as f64 / 2.0;
    assert!((composed - s1 * s2).abs() < 1e-9, "composed {composed} vs {s1}·{s2}");
    // And the composed slowdown respects the trade-off on the final host.
    assert!(universal_networks::core::bounds::consistent_with_lower_bound(64, 4, composed, 0.05));
}

#[test]
fn exotic_hosts_also_work() {
    // The reference-list topologies serve as hosts too: mesh of trees [1],
    // Kautz, multibutterfly [17].
    let guest = random_regular(96, 4, &mut seeded_rng(21));
    let router = presets::bfs();
    let hosts: Vec<(&str, Graph)> = vec![
        ("mesh-of-trees", mesh_of_trees(4)),
        ("kautz", kautz(2, 3)),
        ("multibutterfly", multibutterfly(3, &mut seeded_rng(22))),
    ];
    for (name, host) in hosts {
        let m = host.n();
        let s = simulate_and_certify(&guest, &host, Embedding::block(96, m), &router, 2, 0x5e);
        assert!(s.is_finite(), "{name}");
    }
}

#[test]
fn protocol_mutations_are_caught() {
    // Failure injection: take a valid protocol and corrupt it in every
    // structural way; the checker must reject each mutation.
    use universal_networks::pebble::{Op, Pebble};
    let guest = ring(16);
    let host = torus(2, 2);
    let comp = GuestComputation::random(guest.clone(), 10);
    let router = presets::bfs();
    let run = Simulation::builder()
        .guest(&comp)
        .host(&host)
        .embedding(Embedding::block(16, 4))
        .router(&router)
        .steps(2)
        .seed(11)
        .run()
        .expect("configuration is valid");
    assert!(check(&guest, &host, &run.protocol).is_ok());

    // 1. Drop a receive (orphans its paired send).
    let mut p1 = run.protocol.clone();
    'outer: for row in p1.steps.iter_mut() {
        for op in row.iter_mut() {
            if matches!(op, Op::Recv { .. }) {
                *op = Op::Idle;
                break 'outer;
            }
        }
    }
    assert!(check(&guest, &host, &p1).is_err(), "dropped recv must fail");

    // 2. Forge a generate with missing predecessors: prepend a step that
    //    generates (P0, 2) before any level-1 pebble exists.
    let mut p2 = run.protocol.clone();
    let mut forged = vec![Op::Idle; 4];
    forged[0] = Op::Generate(Pebble::new(0, 2));
    p2.steps.insert(0, forged);
    assert!(check(&guest, &host, &p2).is_err(), "forged generate must fail");

    // 3. Remove a final generation entirely.
    let mut p3 = run.protocol.clone();
    for row in p3.steps.iter_mut() {
        for op in row.iter_mut() {
            if matches!(op, Op::Generate(p) if p.t == 2 && p.node == 5) {
                *op = Op::Idle;
            }
        }
    }
    assert!(check(&guest, &host, &p3).is_err(), "missing final must fail");

    // 4. Redirect a send to a non-neighbour.
    let mut p4 = run.protocol.clone();
    'outer2: for row in p4.steps.iter_mut() {
        for op in row.iter_mut() {
            if let Op::Send { to, .. } = op {
                // Torus(2,2) is complete-ish (K4 minus nothing? 2×2 torus is
                // 2-regular: 0-1, 0-2 edges; 0-3 is NOT an edge).
                *to = 3;
                if let Op::Send { pebble, .. } = *op {
                    let _ = pebble;
                }
                break 'outer2;
            }
        }
    }
    // Either unmatched or non-neighbour — both are rejections.
    assert!(check(&guest, &host, &p4).is_err(), "redirected send must fail");
}

#[test]
fn flooding_crossover_matches_theory() {
    // Flooding has inefficiency k = m exactly; the embedding pays
    // k ≈ c·stretch ≈ O(log m). So flooding *wins* below the crossover
    // m ≈ c·stretch and loses above it — check both regimes.
    use universal_networks::core::flooding::flooding_protocol;
    let comp_of = |n: usize, seed: u64| {
        let guest = random_regular(n, 4, &mut seeded_rng(seed));
        let comp = GuestComputation::random(guest.clone(), seed + 1);
        (guest, comp)
    };
    // Small host (m = 9): redundancy is competitive.
    {
        let (guest, comp) = comp_of(128, 12);
        let host = torus(3, 3);
        let router = presets::torus_xy(3, 3);
        let run = Simulation::builder()
            .guest(&comp)
            .host(&host)
            .embedding(Embedding::block(128, 9))
            .router(&router)
            .steps(2)
            .seed(14)
            .run()
            .expect("configuration is valid");
        verify_run(&comp, &host, &run, 2).unwrap();
        let flood = flooding_protocol(&comp, 9, 2);
        check(&guest, &host, &flood).unwrap();
        assert_eq!(flood.inefficiency(), 9.0); // k = m exactly
    }
    // Larger host (m = 64 > crossover): the embedding must win clearly.
    {
        let (guest, comp) = comp_of(256, 15);
        let host = torus(8, 8);
        let router = presets::torus_xy(8, 8);
        let run = Simulation::builder()
            .guest(&comp)
            .host(&host)
            .embedding(Embedding::block(256, 64))
            .router(&router)
            .steps(2)
            .seed(16)
            .run()
            .expect("configuration is valid");
        verify_run(&comp, &host, &run, 2).unwrap();
        let flood = flooding_protocol(&comp, 64, 2);
        check(&guest, &host, &flood).unwrap();
        assert!(
            run.slowdown() < flood.slowdown(),
            "embedding {} vs flooding {}",
            run.slowdown(),
            flood.slowdown()
        );
    }
}
