//! Experiments E4 + E5: machine-check the lower-bound lemmas on a real run.
//!
//! Samples a guest from `U[G₀]`, simulates it with the Theorem 2.1 engine,
//! certifies the pebble protocol, and then verifies every structural fact of
//! the Section 3 proof on the concrete trace: the Lemma 3.12 averaging
//! bounds and `|Z_S| ≥ (T−D)/2`, the Prop. 3.17 wavefront expansion,
//! dependency monotonicity, fragment structure (Lemma 3.3), heavy-host
//! accounting, and consistency with `m·s = Ω(n·log m)`.
//!
//! Run with: `cargo run --release --example lower_bound_audit`

use universal_networks::core::prelude::*;
use universal_networks::lowerbound::audit::run_audit;
use universal_networks::lowerbound::build_g0;
use universal_networks::topology::generators::{random_supergraph, torus};
use universal_networks::topology::util::seeded_rng;

fn main() {
    let mut rng = seeded_rng(3);
    // n = 144 guests (12×12 grid, side-2 blocks), host torus of m = 16.
    let g0 = build_g0(144, 1, &mut rng);
    println!(
        "G0: n = {}, {} blocks, certified (α, β, γ) = ({:.2}, {:.3}, {:.4})",
        g0.n(),
        g0.h(),
        g0.alpha,
        g0.beta,
        g0.gamma
    );
    let guest = random_supergraph(&g0.graph, 12, &mut rng);
    println!(
        "guest ∈ U[G0]: {}-regular, contains G0: {}",
        guest.is_regular().map_or(0, |d| d),
        guest.contains_subgraph(&g0.graph)
    );

    let host = torus(4, 4);
    let router = presets::torus_xy(4, 4);
    let report = run_audit(
        &g0,
        &guest,
        &host,
        Embedding::block(144, 16),
        &router,
        8,
        0.05,
        &mut seeded_rng(4),
    );

    println!("\n== simulation metrics ==");
    println!(
        "T' = {}, slowdown s = {:.1}, inefficiency k = {:.2}, total pebble copies = {}",
        report.metrics.host_steps,
        report.metrics.slowdown,
        report.metrics.inefficiency,
        report.metrics.total_weight
    );

    println!("\n== Lemma 3.12 (averaging) ==");
    println!(
        "tree depth D = {}, |Z_S| = {} (large enough: {})",
        report.averaging.depth,
        report.averaging.z_s.len(),
        report.averaging.z_s_large_enough
    );
    if let Some(c) = report.averaging.certificates.first() {
        println!(
            "t0 = {}: Σq(roots) = {} ≤ {:.1},  Σw(roots) = {} ≤ {:.1}",
            c.t0, c.sum_root_q, c.bound_root_q, c.sum_root_w, c.bound_root_w
        );
    }
    println!(
        "total weight {} ≤ work bound m·T' = {}",
        report.averaging.total_weight, report.averaging.work_bound
    );

    println!("\n== Prop 3.17 (wavefront) ==");
    println!("dependency monotonicity: {}", report.wavefront.monotone);
    println!("expansion steps hold:    {}", report.wavefront.expansion_ok);
    println!("τ_j thresholds:          {:?}", report.wavefront.taus);
    println!("min level gap:           {:?}", report.wavefront.min_gap);

    println!("\n== fragments (Lemma 3.3 / Prop 3.14) ==");
    println!("structurally valid: {}", report.fragments_structurally_valid);
    println!("small-D fraction:   {:.3}", report.small_d_fraction);
    if let Some(fc) = report.fragment_costs.first() {
        println!(
            "encoding cost at t0 = {}: {:.0} bits ≤ budget r·n·k = {:.0} bits",
            fc.t0,
            fc.total(),
            fc.budget_bits
        );
    }

    println!("\n== verdict ==");
    println!("heavy-host bound held:  {}", report.heavy_host_bound_held);
    println!("trade-off consistent:   {}", report.tradeoff_consistent);
    println!("AUDIT {}", if report.passed() { "PASSED" } else { "FAILED" });
    assert!(report.passed());
}
