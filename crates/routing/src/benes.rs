//! Beneš networks and Waksman's offline permutation routing.
//!
//! Section 2's corollary routes the guest-induced `⌈n/m⌉–⌈n/m⌉` problem
//! *offline* (the permutations "depend on G only, and therefore are known in
//! advance"), citing Waksman's permuting network. We implement the cited
//! machinery end to end: the Beneš multistage network as a constant-degree
//! graph, the looping algorithm that realizes **any** permutation with
//! link-congestion 1 per stage, and wave-pipelining of many permutations —
//! giving offline `h–h` routing in `(2d − 1) + (perms − 1)` steps, i.e.
//! `route(h) = O(h + log m)` per wave on an `m`-node Beneš host.

use crate::packet::Transfer;
use unet_topology::{Graph, GraphBuilder, Node};

/// The cross-bit sequence of the recursive Beneš network on `2^d` rows:
/// `[0, 1, …, d−1, d−2, …, 0]` (length `2d − 1` stage transitions between
/// `2d` node columns).
pub fn cross_bits(d: usize) -> Vec<usize> {
    assert!(d >= 1);
    let mut bits: Vec<usize> = (0..d).collect();
    bits.extend((0..d - 1).rev());
    bits
}

/// Node id of `(column, row)` in the Beneš graph on `2^d` rows.
#[inline]
pub fn benes_index(d: usize, col: usize, row: usize) -> Node {
    debug_assert!(row < (1 << d) && col < 2 * d);
    (col * (1 << d) + row) as Node
}

/// The Beneš network as an undirected constant-degree (≤ 4) graph:
/// `2d` columns of `2^d` rows, consecutive columns joined by straight edges
/// and cross edges on [`cross_bits`]. A legitimate universal-host substrate
/// in its own right (`2d·2^d` nodes).
pub fn benes_network(d: usize) -> Graph {
    let rows = 1usize << d;
    let bits = cross_bits(d);
    let mut b = GraphBuilder::new(2 * d * rows);
    for (c, &bit) in bits.iter().enumerate() {
        for r in 0..rows {
            b.add_edge(benes_index(d, c, r), benes_index(d, c + 1, r));
            b.add_edge(benes_index(d, c, r), benes_index(d, c + 1, r ^ (1 << bit)));
        }
    }
    b.build()
}

/// Waksman's looping algorithm: for a permutation `perm` of `2^d` rows
/// (`perm[i]` = output row of the packet entering at row `i`), compute the
/// row of every packet at every Beneš column so that **no two packets share
/// a directed stage edge**.
///
/// Returns `paths[i][c]` = row of packet `i` at column `c ∈ [0, 2d)`;
/// `paths[i][0] = i` and `paths[i][2d−1] = perm[i]`.
pub fn waksman_paths(perm: &[u32]) -> Vec<Vec<u32>> {
    let n = perm.len();
    assert!(n >= 2 && n.is_power_of_two(), "permutation size must be a power of two ≥ 2");
    {
        // Validate permutation.
        let mut seen = vec![false; n];
        for &p in perm {
            assert!((p as usize) < n && !seen[p as usize], "not a permutation");
            seen[p as usize] = true;
        }
    }
    solve(perm)
}

fn solve(perm: &[u32]) -> Vec<Vec<u32>> {
    let n = perm.len();
    if n == 2 {
        // One switch: two columns.
        return vec![vec![0, perm[0]], vec![1, perm[1]]];
    }
    // Inverse permutation.
    let mut inv = vec![0u32; n];
    for (i, &p) in perm.iter().enumerate() {
        inv[p as usize] = i as u32;
    }
    // Looping: branch[i] ∈ {0 (top), 1 (bottom)}.
    const UNSET: u8 = u8::MAX;
    let mut branch = vec![UNSET; n];
    for start in 0..n {
        if branch[start] != UNSET {
            continue;
        }
        let mut i = start;
        branch[i] = 0;
        loop {
            // Input-pair constraint: partner takes the other subnetwork.
            let partner = i ^ 1;
            if branch[partner] != UNSET {
                break;
            }
            branch[partner] = branch[i] ^ 1;
            // Output-pair constraint: the packet leaving through the other
            // output of partner's output switch takes the other subnetwork.
            let sibling = inv[(perm[partner] ^ 1) as usize] as usize;
            if branch[sibling] != UNSET {
                break;
            }
            branch[sibling] = branch[partner] ^ 1;
            i = sibling;
        }
    }
    // Build sub-permutations on n/2 pairs.
    let half = n / 2;
    let mut top_perm = vec![u32::MAX; half];
    let mut bot_perm = vec![u32::MAX; half];
    for i in 0..n {
        let pair_in = i >> 1;
        let pair_out = perm[i] >> 1;
        let tgt = if branch[i] == 0 { &mut top_perm } else { &mut bot_perm };
        debug_assert_eq!(tgt[pair_in], u32::MAX, "looping produced a clash");
        tgt[pair_in] = pair_out;
    }
    let top = solve(&top_perm);
    let bot = solve(&bot_perm);
    // Assemble full paths.
    let sub_cols = top[0].len(); // 2(d−1)
    let cols = sub_cols + 2;
    let mut paths = vec![Vec::with_capacity(cols); n];
    for i in 0..n {
        let b = branch[i] as u32;
        let sub = if b == 0 { &top } else { &bot };
        let p = i >> 1;
        let path = &mut paths[i];
        path.push(i as u32);
        for &cell in sub[p].iter().take(sub_cols) {
            path.push((cell << 1) | b);
        }
        path.push(perm[i]);
    }
    paths
}

/// Verify the Waksman output: consecutive rows differ only in the stage's
/// cross bit, endpoints match, and per stage no directed edge carries two
/// packets. Returns the per-stage max edge congestion (must be all 1).
pub fn verify_waksman(perm: &[u32], paths: &[Vec<u32>]) -> Result<(), String> {
    let n = perm.len();
    let d = n.trailing_zeros() as usize;
    let bits = cross_bits(d);
    if paths.len() != n {
        return Err("path count mismatch".into());
    }
    let mut used = std::collections::HashSet::new();
    for (i, path) in paths.iter().enumerate() {
        if path.len() != 2 * d {
            return Err(format!("packet {i}: {} columns, want {}", path.len(), 2 * d));
        }
        if path[0] != i as u32 || path[2 * d - 1] != perm[i] {
            return Err(format!("packet {i}: wrong endpoints"));
        }
        for (c, w) in path.windows(2).enumerate() {
            let diff = w[0] ^ w[1];
            if diff != 0 && diff != (1 << bits[c]) {
                return Err(format!("packet {i}: illegal hop at stage {c}"));
            }
        }
    }
    used.clear();
    for c in 0..2 * d - 1 {
        for (i, path) in paths.iter().enumerate() {
            if !used.insert((c, path[c], path[c + 1])) {
                return Err(format!("stage {c}: edge reused (packet {i})"));
            }
        }
        used.clear();
    }
    Ok(())
}

/// Wave-pipeline several permutations through the Beneš network: wave `w`
/// crosses stage `c` at step `w + c`. Produces the explicit synchronous
/// transfer schedule on [`benes_network`] node ids and its makespan
/// `(perms − 1) + (2d − 1)` — the offline `h–h` routing time of Section 2.
///
/// Port-model safety per step is asserted (each node sends ≤ 1 and receives
/// ≤ 1): within a wave every column-row carries exactly one packet, and
/// different waves occupy different columns at any step.
pub fn pipeline_schedule(d: usize, perms: &[Vec<u32>]) -> (u32, Vec<Transfer>) {
    let stages = 2 * d - 1;
    let mut transfers = Vec::new();
    let mut paths_per_wave = Vec::with_capacity(perms.len());
    for perm in perms {
        let paths = waksman_paths(perm);
        verify_waksman(perm, &paths).expect("Waksman routing must verify");
        paths_per_wave.push(paths);
    }
    let makespan = (perms.len().max(1) - 1 + stages) as u32;
    for (w, paths) in paths_per_wave.iter().enumerate() {
        for (pid, path) in paths.iter().enumerate() {
            for c in 0..stages {
                transfers.push(Transfer {
                    step: (w + c) as u32,
                    from: benes_index(d, c, path[c] as usize),
                    to: benes_index(d, c + 1, path[c + 1] as usize),
                    packet_id: (w * paths.len() + pid) as u32,
                });
            }
        }
    }
    transfers.sort_by_key(|t| t.step);
    // Port-model assertion.
    let mut senders = std::collections::HashSet::new();
    let mut receivers = std::collections::HashSet::new();
    let mut cur = u32::MAX;
    for t in &transfers {
        if t.step != cur {
            senders.clear();
            receivers.clear();
            cur = t.step;
        }
        assert!(senders.insert(t.from), "double send at step {}", t.step);
        assert!(receivers.insert(t.to), "double recv at step {}", t.step);
    }
    (makespan, transfers)
}

/// Offline `h–h` routing on the Beneš network with sources and destinations
/// on **column 0** (rows): decompose into permutations (Euler split), send
/// every wave forward through the Waksman-configured network, then pipeline
/// all waves straight back along their destination rows. Two cleanly
/// separated pipelined phases avoid forward/return port conflicts.
///
/// Returns `(makespan, transfers, delivered_at)` where `delivered_at[i]` is
/// the completion step of the `i`-th input pair. Padding packets introduced
/// by the decomposition are not moved.
///
/// Makespan = `2·(perms − 1) + 2·(2d − 1)` = `O(h + log m)`.
pub fn benes_h_h_schedule(d: usize, pairs: &[(u32, u32)]) -> (u32, Vec<Transfer>, Vec<u32>) {
    use crate::decompose::decompose_into_permutations;
    use crate::problem::RoutingProblem;
    let rows = 1usize << d;
    let prob =
        RoutingProblem::new(rows, pairs.iter().map(|&(s, t)| (s as Node, t as Node)).collect());
    let perms = decompose_into_permutations(&prob);
    // Assign each original pair to one (wave, src-row) slot.
    let mut slot_of_pair: Vec<Option<(usize, u32)>> = vec![None; pairs.len()];
    {
        use unet_topology::util::FxHashMap;
        let mut unmatched: FxHashMap<(u32, u32), Vec<usize>> = FxHashMap::default();
        for (i, &p) in pairs.iter().enumerate() {
            unmatched.entry(p).or_default().push(i);
        }
        for (w, perm) in perms.iter().enumerate() {
            for (s, &t) in perm.iter().enumerate() {
                if let Some(list) = unmatched.get_mut(&(s as u32, t)) {
                    if let Some(pair_idx) = list.pop() {
                        slot_of_pair[pair_idx] = Some((w, s as u32));
                    }
                }
            }
        }
    }
    let stages = 2 * d - 1;
    let s0 = (perms.len() - 1 + stages) as u32; // return phase start offset
    let mut transfers = Vec::new();
    let mut delivered_at = vec![0u32; pairs.len()];
    let mut paths_cache: Vec<Vec<Vec<u32>>> = Vec::with_capacity(perms.len());
    for perm in &perms {
        let paths = waksman_paths(perm);
        verify_waksman(perm, &paths).expect("Waksman must verify");
        paths_cache.push(paths);
    }
    for (pair_idx, slot) in slot_of_pair.iter().enumerate() {
        let (w, src_row) = slot.expect("decomposition covers every pair");
        let path = &paths_cache[w][src_row as usize];
        let pid = pair_idx as u32;
        // Forward: column c → c+1 at step w + c.
        for c in 0..stages {
            transfers.push(Transfer {
                step: (w + c) as u32,
                from: benes_index(d, c, path[c] as usize),
                to: benes_index(d, c + 1, path[c + 1] as usize),
                packet_id: pid,
            });
        }
        // Return: straight along the destination row, column (2d−1−j) →
        // (2d−2−j) at step s0 + w + j.
        let dst_row = *path.last().unwrap() as usize;
        for j in 0..stages {
            transfers.push(Transfer {
                step: s0 + w as u32 + j as u32,
                from: benes_index(d, 2 * d - 1 - j, dst_row),
                to: benes_index(d, 2 * d - 2 - j, dst_row),
                packet_id: pid,
            });
        }
        delivered_at[pair_idx] = s0 + w as u32 + stages as u32;
    }
    transfers.sort_by_key(|t| (t.step, t.from));
    // Port-model sanity (debug builds): one send and one receive per node
    // per step.
    #[cfg(debug_assertions)]
    {
        let mut senders = std::collections::HashSet::new();
        let mut receivers = std::collections::HashSet::new();
        let mut cur = u32::MAX;
        for t in &transfers {
            if t.step != cur {
                senders.clear();
                receivers.clear();
                cur = t.step;
            }
            assert!(senders.insert(t.from), "double send at step {}", t.step);
            assert!(receivers.insert(t.to), "double recv at step {}", t.step);
        }
    }
    let makespan = delivered_at.iter().copied().max().unwrap_or(0);
    (makespan, transfers, delivered_at)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::seq::SliceRandom;
    use unet_topology::util::seeded_rng;

    #[test]
    fn cross_bits_structure() {
        assert_eq!(cross_bits(1), vec![0]);
        assert_eq!(cross_bits(2), vec![0, 1, 0]);
        assert_eq!(cross_bits(3), vec![0, 1, 2, 1, 0]);
    }

    #[test]
    fn benes_graph_counts() {
        let d = 3;
        let g = benes_network(d);
        assert_eq!(g.n(), (2 * d) << d);
        assert!(g.max_degree() <= 4);
        assert!(unet_topology::analysis::is_connected(&g));
    }

    #[test]
    fn waksman_identity() {
        let perm: Vec<u32> = (0..8).collect();
        let paths = waksman_paths(&perm);
        verify_waksman(&perm, &paths).unwrap();
    }

    #[test]
    fn waksman_reversal_and_rotation() {
        for n in [2usize, 4, 8, 16, 32] {
            let rev: Vec<u32> = (0..n as u32).rev().collect();
            let paths = waksman_paths(&rev);
            verify_waksman(&rev, &paths).unwrap();
            let rot: Vec<u32> = (0..n as u32).map(|i| (i + 1) % n as u32).collect();
            let paths = waksman_paths(&rot);
            verify_waksman(&rot, &paths).unwrap();
        }
    }

    #[test]
    fn waksman_random_permutations() {
        let mut rng = seeded_rng(13);
        for d in 1..=6usize {
            let n = 1usize << d;
            for _ in 0..10 {
                let mut perm: Vec<u32> = (0..n as u32).collect();
                perm.shuffle(&mut rng);
                let paths = waksman_paths(&perm);
                verify_waksman(&perm, &paths).unwrap_or_else(|e| panic!("d = {d}: {e}"));
            }
        }
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn waksman_rejects_non_permutation() {
        waksman_paths(&[0, 0, 1, 2]);
    }

    #[test]
    fn pipeline_makespan_formula() {
        let d = 4;
        let mut rng = seeded_rng(17);
        let mut perms = Vec::new();
        for _ in 0..5 {
            let mut p: Vec<u32> = (0..16).collect();
            p.shuffle(&mut rng);
            perms.push(p);
        }
        let (makespan, transfers) = pipeline_schedule(d, &perms);
        assert_eq!(makespan, (5 - 1) + (2 * 4 - 1));
        // 5 waves × 16 packets × 7 stages transfers.
        assert_eq!(transfers.len(), 5 * 16 * 7);
    }

    #[test]
    fn pipeline_single_wave() {
        let (makespan, _) = pipeline_schedule(2, &[vec![3, 2, 1, 0]]);
        assert_eq!(makespan, 3);
    }

    #[test]
    fn round_trip_schedule_random_h_h() {
        let d = 3;
        let rows = 1u32 << d;
        let mut rng = seeded_rng(31);
        // Random 4–4 problem on the 8 rows.
        let mut pairs = Vec::new();
        for _ in 0..4 {
            let mut p: Vec<u32> = (0..rows).collect();
            p.shuffle(&mut rng);
            for (s, &t) in p.iter().enumerate() {
                pairs.push((s as u32, t));
            }
        }
        let (makespan, transfers, delivered) = benes_h_h_schedule(d, &pairs);
        // Makespan = 2(P−1) + 2(2d−1) with P = 4 perms: 6 + 10 = 16.
        assert_eq!(makespan, 16);
        assert_eq!(delivered.len(), pairs.len());
        assert!(delivered.iter().all(|&x| x <= makespan));
        // Each packet moves 2·(2d−1) times.
        assert_eq!(transfers.len(), pairs.len() * 2 * (2 * d - 1));
        // Packets end at their destination row on column 0.
        for (i, &(_, t)) in pairs.iter().enumerate() {
            let last = transfers
                .iter()
                .filter(|tr| tr.packet_id == i as u32)
                .max_by_key(|tr| tr.step)
                .unwrap();
            assert_eq!(last.to, benes_index(d, 0, t as usize));
        }
    }

    #[test]
    fn round_trip_schedule_single_permutation() {
        let d = 2;
        let pairs: Vec<(u32, u32)> = vec![(0, 3), (1, 2), (2, 1), (3, 0)];
        let (makespan, _, delivered) = benes_h_h_schedule(d, &pairs);
        assert_eq!(makespan, 2 * (2 * d as u32 - 1));
        assert!(delivered.iter().all(|&x| x == makespan));
    }
}
