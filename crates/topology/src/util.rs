//! Small utilities shared across the workspace: a fast hasher for integer
//! keys and deterministic RNG construction.
//!
//! The simulators hash millions of `(node, time)` pairs; std's SipHash is a
//! measurable cost there (see the Rust Performance Book's hashing chapter).
//! `rustc-hash` is not on the sanctioned dependency list, so we implement the
//! same multiply-rotate scheme (Fx) here — it is ~15 lines and fully tested.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-rotate hasher for integer-dominated keys (the Fx scheme used by
/// rustc). Not HashDoS-resistant; all keys in this workspace are internal.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }
    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }
    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }
    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }
    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `HashMap` keyed by the Fx hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed by the Fx hasher.
pub type FxHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<FxHasher>>;

/// Deterministic RNG for reproducible topologies and workloads.
///
/// Everything random in this workspace (random regular graphs, routing
/// destinations, guest initial states) flows from an explicit `u64` seed so
/// experiments are replayable.
pub fn seeded_rng(seed: u64) -> rand::rngs::StdRng {
    use rand::SeedableRng;
    rand::rngs::StdRng::seed_from_u64(seed)
}

/// Integer square root (floor). Used for mesh side lengths and the paper's
/// `a = √(log m)` parameter without pulling in floating point.
pub fn isqrt(x: usize) -> usize {
    if x < 2 {
        return x;
    }
    let mut r = (x as f64).sqrt() as usize;
    // Correct any floating-point drift.
    while (r + 1) * (r + 1) <= x {
        r += 1;
    }
    while r * r > x {
        r -= 1;
    }
    r
}

/// Floor of log₂, `None` for zero.
pub fn ilog2(x: usize) -> Option<u32> {
    (x > 0).then(|| usize::BITS - 1 - x.leading_zeros())
}

/// `log₂(x!)` via the log-gamma function (Stirling is not accurate enough for
/// the small arguments that appear in the counting experiments).
pub fn log2_factorial(x: u64) -> f64 {
    lgamma(x as f64 + 1.0) / std::f64::consts::LN_2
}

/// `log₂ C(n, k)`; `-∞`-free: returns `f64::NEG_INFINITY` when `k > n`.
pub fn log2_binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    log2_factorial(n) - log2_factorial(k) - log2_factorial(n - k)
}

/// Natural log-gamma via the Lanczos approximation (g = 7, n = 9), accurate to
/// ~1e-13 for positive arguments — ample for counting bounds measured in bits.
pub fn lgamma(x: f64) -> f64 {
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - lgamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, BuildHasherDefault};

    #[test]
    fn fx_hash_distinct_small_keys() {
        let bh: BuildHasherDefault<FxHasher> = Default::default();
        let h1 = bh.hash_one(1u64);
        let h2 = bh.hash_one(2u64);
        assert_ne!(h1, h2);
    }

    #[test]
    fn fx_hashmap_roundtrip() {
        let mut m: FxHashMap<u32, u32> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&421], 842);
    }

    #[test]
    fn fx_write_bytes_consistent() {
        // Hashing the same bytes through different write paths must at least
        // be deterministic per path.
        let bh: BuildHasherDefault<FxHasher> = Default::default();
        assert_eq!(bh.hash_one([1u8, 2, 3]), bh.hash_one([1u8, 2, 3]));
    }

    #[test]
    fn isqrt_exact_and_floor() {
        assert_eq!(isqrt(0), 0);
        assert_eq!(isqrt(1), 1);
        assert_eq!(isqrt(15), 3);
        assert_eq!(isqrt(16), 4);
        assert_eq!(isqrt(17), 4);
        assert_eq!(isqrt(1 << 40), 1 << 20);
        for x in 0..5000usize {
            let r = isqrt(x);
            assert!(r * r <= x && (r + 1) * (r + 1) > x, "x = {x}");
        }
    }

    #[test]
    fn ilog2_values() {
        assert_eq!(ilog2(0), None);
        assert_eq!(ilog2(1), Some(0));
        assert_eq!(ilog2(2), Some(1));
        assert_eq!(ilog2(3), Some(1));
        assert_eq!(ilog2(1024), Some(10));
    }

    #[test]
    fn lgamma_matches_factorials() {
        for n in 1u64..20 {
            let exact: f64 = (1..=n).map(|i| (i as f64).ln()).sum();
            assert!((lgamma(n as f64 + 1.0) - exact).abs() < 1e-9, "n = {n}");
        }
    }

    #[test]
    fn log2_binomial_matches_pascal() {
        // C(10, 3) = 120
        assert!((log2_binomial(10, 3) - (120f64).log2()).abs() < 1e-9);
        // C(52, 5) = 2598960
        assert!((log2_binomial(52, 5) - (2_598_960f64).log2()).abs() < 1e-9);
        assert_eq!(log2_binomial(3, 5), f64::NEG_INFINITY);
    }

    #[test]
    fn seeded_rng_reproducible() {
        use rand::Rng;
        let mut a = seeded_rng(42);
        let mut b = seeded_rng(42);
        let xa: Vec<u32> = (0..16).map(|_| a.gen()).collect();
        let xb: Vec<u32> = (0..16).map(|_| b.gen()).collect();
        assert_eq!(xa, xb);
    }
}
