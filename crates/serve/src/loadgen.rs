//! Deterministic closed-loop load generator.
//!
//! `clients` concurrent connections each issue `requests_per_client`
//! identical round trips back-to-back (closed loop: the next request
//! leaves only after the previous response arrives). Each round trip
//! carries `batch` simulate specs — 1 sends a plain `simulate` request,
//! more sends one `batch` request — so offered load in *items* is
//! `clients × requests_per_client × batch`. The item count and workload
//! are fully deterministic — only wall-clock latency varies — which is
//! what the E19/E20 offered-load sweeps need: saturation throughput
//! ordered by worker count and batch size, with the shared route-plan
//! cache absorbing every repeat of the workload.
//!
//! An optional warm-up request is issued before the clients start so the
//! one unavoidable shared-cache miss happens deterministically up front
//! (`hit_ratio = R·C / (R·C + 1)` on a repeated workload with `batch = 1`).
//!
//! When driving a `unet shard` router, set [`LoadgenConfig::shards`] to
//! the ring size: the generator derives one seed per shard — the smallest
//! seeds at or above `seed` whose workload fingerprints home to each shard
//! on the same [`Ring`] the router uses — and spreads
//! clients round-robin across those seeds. Offered load is then *exactly*
//! balanced per shard (no stochastic consistent-hash skew), each shard's
//! plan cache sees exactly one distinct workload, and the warm-up issues
//! one request per seed so every shard's unavoidable miss happens up
//! front: `hit_ratio = R·C / (R·C + N)` globally for `N` shards.

use std::io;
use std::time::Instant;

use crate::client::{Client, ClientError};
use crate::protocol::{parse_response, simulate_request_line, Response, SimulateReq};
use crate::ring::Ring;
use crate::router::simulate_fingerprint;

/// Load-generator configuration.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address (`host:port`).
    pub addr: String,
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Round trips each client issues.
    pub requests_per_client: usize,
    /// Simulate specs per round trip (1 = plain `simulate` requests,
    /// ≥ 2 = `batch` requests).
    pub batch: usize,
    /// Guest graph spec.
    pub guest: String,
    /// Host graph spec.
    pub host: String,
    /// Guest steps per item.
    pub steps: u32,
    /// Seed (identical across items — that is the point: a repeated
    /// workload exercises the shared plan cache).
    pub seed: u64,
    /// Per-request deadline override.
    pub deadline_ms: Option<u64>,
    /// Issue one warm-up request before the clients start (one per
    /// distinct seed when `shards > 1`).
    pub warmup: bool,
    /// Ring size of the `unet shard` router being driven (1 = a plain
    /// server). Values above 1 switch the generator to one
    /// fingerprint-searched seed per shard with clients spread
    /// round-robin, so per-shard offered load is exactly balanced.
    pub shards: usize,
}

/// What a load-generator run measured.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Simulate items issued (including the warm-up when enabled).
    pub sent: usize,
    /// Items answered successfully.
    pub completed: usize,
    /// Items rejected with `overloaded`.
    pub rejected: usize,
    /// Items answered with `error` (or a failed batch slot) or lost to
    /// I/O failures.
    pub errors: usize,
    /// Wall time of the measured (post-warm-up) phase in milliseconds.
    pub wall_ms: f64,
    /// Per-round-trip latencies in milliseconds, sorted ascending
    /// (warm-up excluded). A batch round trip is one sample. These are
    /// the typed client's own end-to-end measurements
    /// ([`SimulateResult::e2e_ms`](crate::client::SimulateResult::e2e_ms)),
    /// not a second stopwatch around the socket.
    pub latencies_ms: Vec<f64>,
    /// Server-reported stage-span totals in milliseconds, summed across
    /// every successful plain-`simulate` round trip, in first-seen stage
    /// order. Empty when driving a pre-`/3` server or a batched loop.
    pub stage_totals_ms: Vec<(String, f64)>,
}

impl LoadgenReport {
    /// Mean round-trip latency (`None` when nothing completed).
    pub fn mean_ms(&self) -> Option<f64> {
        if self.latencies_ms.is_empty() {
            None
        } else {
            Some(self.latencies_ms.iter().sum::<f64>() / self.latencies_ms.len() as f64)
        }
    }

    /// Nearest-rank latency percentile, `p` in `[0, 100]`.
    pub fn percentile_ms(&self, p: f64) -> Option<f64> {
        if self.latencies_ms.is_empty() {
            return None;
        }
        let idx = ((p / 100.0) * (self.latencies_ms.len() - 1) as f64).round() as usize;
        Some(self.latencies_ms[idx.min(self.latencies_ms.len() - 1)])
    }

    /// Completed items per second over the measured phase.
    pub fn throughput_rps(&self) -> f64 {
        if self.wall_ms <= 0.0 {
            0.0
        } else {
            self.completed as f64 / (self.wall_ms / 1e3)
        }
    }

    /// Total milliseconds attributed to `stage` across the run.
    pub fn stage_total_ms(&self, stage: &str) -> f64 {
        self.stage_totals_ms.iter().find(|(s, _)| s == stage).map_or(0.0, |(_, ms)| *ms)
    }

    /// Fraction of the summed client-measured latency that the server's
    /// stage spans account for (`None` without latency samples). The
    /// E22 span-accounting gate: close to 1.0 means the waterfall
    /// explains the latency a caller actually saw; the remainder is the
    /// wire and client-side overhead.
    pub fn span_coverage(&self) -> Option<f64> {
        let e2e: f64 = self.latencies_ms.iter().sum();
        if e2e <= 0.0 {
            return None;
        }
        let spans: f64 = self.stage_totals_ms.iter().map(|(_, ms)| ms).sum();
        Some(spans / e2e)
    }

    /// `stage`'s share of the total stage-span time (`None` when no
    /// stages were reported). `queue_wait`'s share crossing 0.5 is the
    /// E22 signature of offered load passing capacity.
    pub fn stage_share(&self, stage: &str) -> Option<f64> {
        let total: f64 = self.stage_totals_ms.iter().map(|(_, ms)| ms).sum();
        if total <= 0.0 {
            None
        } else {
            Some(self.stage_total_ms(stage) / total)
        }
    }
}

/// Outcome counters of a single client's closed loop.
#[derive(Debug, Default)]
struct ClientTally {
    completed: usize,
    rejected: usize,
    errors: usize,
    latencies_ms: Vec<f64>,
    stage_totals_ms: Vec<(String, f64)>,
}

impl ClientTally {
    fn add_stages(&mut self, stages: &[(String, f64)]) {
        for (stage, ms) in stages {
            match self.stage_totals_ms.iter_mut().find(|(s, _)| s == stage) {
                Some(slot) => slot.1 += ms,
                None => self.stage_totals_ms.push((stage.clone(), *ms)),
            }
        }
    }
}

/// One client's closed loop, on the typed [`Client`]: latency samples are
/// the client's own `e2e_ms` (no second stopwatch here) and the
/// server-reported stage spans accumulate into the tally.
fn run_client(addr: &str, spec: &SimulateReq, batch: usize, requests: usize) -> ClientTally {
    let mut tally = ClientTally::default();
    let mut client: Option<Client> = None;
    for _ in 0..requests {
        if client.is_none() {
            match Client::connect(addr) {
                Ok(c) => client = Some(c),
                Err(_) => {
                    tally.errors += batch;
                    continue;
                }
            }
        }
        let conn = client.as_mut().expect("connected above");
        if batch == 1 {
            match conn.simulate(spec) {
                Ok(res) => {
                    tally.completed += 1;
                    tally.latencies_ms.push(res.e2e_ms);
                    tally.add_stages(&res.stages);
                }
                Err(ClientError::Server(_)) => tally.errors += 1,
                // The server answers overloaded before reading and drops
                // the connection; reconnect and keep going.
                Err(ClientError::Overloaded { .. }) => {
                    tally.rejected += 1;
                    client = None;
                }
                Err(_) => {
                    tally.errors += 1;
                    client = None; // reconnect and keep going
                }
            }
        } else {
            match conn.simulate_batch(&vec![spec.clone(); batch], spec.deadline_ms) {
                Ok(items) => {
                    let mut e2e = None;
                    for item in items {
                        match item {
                            Ok(res) => {
                                tally.completed += 1;
                                e2e = Some(res.e2e_ms);
                            }
                            Err(_) => tally.errors += 1,
                        }
                    }
                    // One sample per batch round trip with a completion.
                    if let Some(e2e_ms) = e2e {
                        tally.latencies_ms.push(e2e_ms);
                    }
                }
                Err(ClientError::Server(_)) => tally.errors += batch,
                Err(ClientError::Overloaded { .. }) => {
                    tally.rejected += batch;
                    client = None;
                }
                Err(_) => {
                    tally.errors += batch;
                    client = None;
                }
            }
        }
    }
    tally
}

/// The spec a client driving seed `seed` repeats.
fn spec_for_seed(cfg: &LoadgenConfig, seed: u64) -> SimulateReq {
    SimulateReq {
        guest: cfg.guest.clone(),
        host: cfg.host.clone(),
        steps: cfg.steps,
        seed,
        deadline_ms: cfg.deadline_ms,
        id: None,
    }
}

/// One seed per shard, indexed by home shard: the smallest seeds at or
/// above `cfg.seed` whose workload fingerprints land on each shard of
/// `Ring::new(shards)`. Deterministic (pure search, no clock or RNG), so
/// repeated runs offer the identical per-shard workload. Expected search
/// length is `N·H_N` seeds for `N` shards — a handful. Falls back to
/// `cfg.seed` everywhere if the spec cannot be fingerprinted (the run
/// will produce typed errors regardless of placement).
fn seeds_for_shards(cfg: &LoadgenConfig, shards: usize) -> Vec<u64> {
    if shards <= 1 {
        return vec![cfg.seed];
    }
    let ring = Ring::new(shards);
    let mut seeds: Vec<Option<u64>> = vec![None; shards];
    let mut found = 0usize;
    for delta in 0..100_000u64 {
        let seed = cfg.seed.wrapping_add(delta);
        match simulate_fingerprint(&spec_for_seed(cfg, seed)) {
            Ok(fp) => {
                let shard = ring.shard_of(fp);
                if seeds[shard].is_none() {
                    seeds[shard] = Some(seed);
                    found += 1;
                    if found == shards {
                        break;
                    }
                }
            }
            Err(_) => break,
        }
    }
    seeds.into_iter().map(|s| s.unwrap_or(cfg.seed)).collect()
}

/// Run the closed loop and aggregate every client's tally.
pub fn run(cfg: &LoadgenConfig) -> io::Result<LoadgenReport> {
    let batch = cfg.batch.max(1);
    let seeds = seeds_for_shards(cfg, cfg.shards.max(1));
    let specs: Vec<SimulateReq> = seeds.iter().map(|&seed| spec_for_seed(cfg, seed)).collect();
    let mut sent = 0usize;
    let mut warm_completed = 0usize;
    let mut warm_errors = 0usize;
    if cfg.warmup {
        // One warm-up per distinct seed: every shard takes its one
        // unavoidable plan-cache miss before the measured phase starts.
        for &seed in &seeds {
            sent += 1;
            let warm_line = simulate_request_line(&spec_for_seed(cfg, seed), None);
            let outcome = Client::connect(&cfg.addr).and_then(|mut c| c.request_raw(&warm_line));
            match outcome {
                Ok(resp) => match parse_response(resp.trim()) {
                    Ok(Response::Result(_)) => warm_completed += 1,
                    _ => warm_errors += 1,
                },
                Err(_) => warm_errors += 1,
            }
        }
    }
    let started = Instant::now();
    let tallies: Vec<ClientTally> = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.clients)
            .map(|i| {
                let addr = &cfg.addr;
                let spec = &specs[i % specs.len()];
                s.spawn(move |_| run_client(addr, spec, batch, cfg.requests_per_client))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client panicked")).collect()
    })
    .expect("loadgen scope");
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    sent += cfg.clients * cfg.requests_per_client * batch;
    let mut report = LoadgenReport {
        sent,
        completed: warm_completed,
        rejected: 0,
        errors: warm_errors,
        wall_ms,
        latencies_ms: Vec::new(),
        stage_totals_ms: Vec::new(),
    };
    for t in tallies {
        report.completed += t.completed;
        report.rejected += t.rejected;
        report.errors += t.errors;
        report.latencies_ms.extend(t.latencies_ms);
        for (stage, ms) in t.stage_totals_ms {
            match report.stage_totals_ms.iter_mut().find(|(s, _)| *s == stage) {
                Some(slot) => slot.1 += ms,
                None => report.stage_totals_ms.push((stage, ms)),
            }
        }
    }
    report.latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_nearest_rank() {
        let report = LoadgenReport {
            sent: 4,
            completed: 4,
            rejected: 0,
            errors: 0,
            wall_ms: 100.0,
            latencies_ms: vec![1.0, 2.0, 3.0, 10.0],
            stage_totals_ms: Vec::new(),
        };
        assert_eq!(report.percentile_ms(0.0), Some(1.0));
        assert_eq!(report.percentile_ms(50.0), Some(3.0));
        assert_eq!(report.percentile_ms(100.0), Some(10.0));
        assert_eq!(report.mean_ms(), Some(4.0));
        assert_eq!(report.throughput_rps(), 40.0);
    }

    #[test]
    fn empty_report_has_no_percentiles() {
        let report = LoadgenReport {
            sent: 0,
            completed: 0,
            rejected: 0,
            errors: 0,
            wall_ms: 0.0,
            latencies_ms: Vec::new(),
            stage_totals_ms: Vec::new(),
        };
        assert_eq!(report.percentile_ms(99.0), None);
        assert_eq!(report.mean_ms(), None);
        assert_eq!(report.throughput_rps(), 0.0);
        assert_eq!(report.span_coverage(), None);
        assert_eq!(report.stage_share("queue_wait"), None);
    }

    #[test]
    fn shard_seed_search_balances_every_shard() {
        let cfg = LoadgenConfig {
            addr: String::new(),
            clients: 8,
            requests_per_client: 4,
            batch: 1,
            guest: "ring:12".into(),
            host: "torus:2x2".into(),
            steps: 2,
            seed: 0xE21,
            deadline_ms: None,
            warmup: true,
            shards: 4,
        };
        let seeds = seeds_for_shards(&cfg, 4);
        assert_eq!(seeds.len(), 4);
        let ring = Ring::new(4);
        for (shard, &seed) in seeds.iter().enumerate() {
            let fp = simulate_fingerprint(&spec_for_seed(&cfg, seed)).expect("fingerprintable");
            assert_eq!(ring.shard_of(fp), shard, "seed {seed} homes to its shard");
        }
        let mut distinct = seeds.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(distinct.len(), 4, "one distinct seed per shard: {seeds:?}");
        // Deterministic and degenerate-safe.
        assert_eq!(seeds, seeds_for_shards(&cfg, 4));
        assert_eq!(seeds_for_shards(&cfg, 1), vec![0xE21]);
    }

    #[test]
    fn stage_totals_accumulate_and_expose_coverage() {
        let mut tally = ClientTally::default();
        tally.add_stages(&[("queue_wait".into(), 6.0), ("simulate".into(), 2.0)]);
        tally.add_stages(&[("queue_wait".into(), 4.0), ("serialize".into(), 0.5)]);
        assert_eq!(
            tally.stage_totals_ms,
            vec![
                ("queue_wait".to_string(), 10.0),
                ("simulate".to_string(), 2.0),
                ("serialize".to_string(), 0.5)
            ]
        );
        let report = LoadgenReport {
            sent: 2,
            completed: 2,
            rejected: 0,
            errors: 0,
            wall_ms: 20.0,
            latencies_ms: vec![5.0, 20.0],
            stage_totals_ms: tally.stage_totals_ms,
        };
        assert_eq!(report.stage_total_ms("queue_wait"), 10.0);
        assert_eq!(report.stage_total_ms("unknown"), 0.0);
        assert_eq!(report.span_coverage(), Some(12.5 / 25.0));
        assert_eq!(report.stage_share("queue_wait"), Some(10.0 / 12.5));
    }
}
