//! # universal-networks
//!
//! A full reproduction of *"Optimal Trade-Offs Between Size and Slowdown for
//! Universal Parallel Networks"* (F. Meyer auf der Heide, M. Storch,
//! R. Wanka; SPAA 1995 / ICSI TR-96-052) as a usable Rust system:
//! network topologies, the pebble-game simulation model, packet routing,
//! universal simulation algorithms, and the lower-bound machinery — all
//! executable and machine-checked.
//!
//! This facade crate re-exports the member crates:
//!
//! * [`topology`] — graphs and generators (meshes, tori, multitori,
//!   butterflies, CCC, shuffle-exchange, de Bruijn, expanders, …);
//! * [`pebble`] — the Section 3.1 simulation model: protocols, validity
//!   checking, traces, fragments, dependency graphs/trees;
//! * [`routing`] — `h–h` routing: greedy, Valiant, Beneš/Waksman offline,
//!   sorting networks;
//! * [`core`] — universal simulations (Theorem 2.1 engine, Galil–Paul,
//!   flooding, tree hosts) and bound predictions;
//! * [`lowerbound`] — Theorem 3.1 executable: `G₀`, averaging, wavefronts,
//!   counting, audits;
//! * [`obs`] — zero-cost instrumentation: recorders, JSONL run traces
//!   (`unet trace`), and report rendering (`unet report`);
//! * [`faults`] — fault injection and degraded-mode simulation: seeded
//!   fault plans, faulty host views, fault-aware rerouting, and
//!   crash-surviving simulation with re-embedding and pebble replay;
//! * [`mod@bench`] — the declarative experiment registry behind `unet bench`:
//!   parameter grids, sharded sweeps into versioned `BENCH.json`
//!   artifacts, and the shape-predicate regression gate (`unet bench
//!   diff`);
//! * [`serve`] — simulation-as-a-service: the `unet-serve/1` TCP server
//!   behind `unet serve` (admission control, shared route-plan cache,
//!   request deadlines, graceful drain) plus its wire protocol, one-shot
//!   client, and deterministic closed-loop load generator.
//!
//! See `examples/quickstart.rs` for a three-minute tour.

pub use unet_core::spec;

/// Compiles and runs every `rust` block in `README.md` as a doctest, so the
/// README's quickstart and engine-API examples can never drift from the
/// real API. Exists only under `cargo test --doc`.
#[cfg(doctest)]
#[doc = include_str!("../README.md")]
pub struct ReadmeDoctests;

pub use unet_bench as bench;
pub use unet_core as core;
pub use unet_faults as faults;
pub use unet_lowerbound as lowerbound;
pub use unet_obs as obs;
pub use unet_pebble as pebble;
pub use unet_routing as routing;
pub use unet_serve as serve;
pub use unet_topology as topology;

/// Everything most programs need.
pub mod prelude {
    pub use unet_core::prelude::*;
    pub use unet_faults::{DegradedSimulator, DegradedTuning, FaultPlan, FaultyView};
    pub use unet_pebble::{check, Op, Pebble, Protocol, ProtocolBuilder};
    pub use unet_routing::{RoutingProblem, ShortestPath};
    pub use unet_topology::prelude::*;
}
