//! Cross-crate observability: record a full simulation + certification run
//! into an `InMemoryRecorder`, export it as a JSONL trace, parse it back,
//! and check that every recorded signal survives the round trip — and that
//! a legacy `unet-trace/2` trace still reads identically through the
//! `unet-trace/4` reader and the streaming analyzer.

use universal_networks::core::prelude::*;
use universal_networks::obs::analysis::analyze_str;
use universal_networks::obs::trace::{export, parse_trace, RunMeta, RunSummary};
use universal_networks::obs::InMemoryRecorder;
use universal_networks::pebble::check_recorded;
use universal_networks::topology::generators::{ring, torus};

#[test]
fn recorded_run_round_trips_through_jsonl() {
    let guest = ring(24);
    let host = torus(3, 3);
    let steps = 4u32;
    let comp = GuestComputation::random(guest.clone(), 0xBEEF);
    let router = presets::bfs();

    let mut rec = InMemoryRecorder::new();
    let run = Simulation::builder()
        .guest(&comp)
        .host(&host)
        .embedding(Embedding::block(guest.n(), host.n()))
        .router(&router)
        .steps(steps)
        .seed(1)
        .recorder(&mut rec)
        .run()
        .expect("configuration is valid");
    check_recorded(&guest, &host, &run.protocol, &mut rec).expect("run certifies");

    let meta = RunMeta {
        command: "test".into(),
        guest: "ring:24".into(),
        host: "torus:3x3".into(),
        n: guest.n() as u64,
        m: host.n() as u64,
        guest_steps: steps as u64,
    };
    let summary = RunSummary {
        host_steps: run.protocol.host_steps() as u64,
        comm_steps: run.comm_steps as u64,
        compute_steps: run.compute_steps as u64,
        slowdown: run.slowdown(),
        inefficiency: run.protocol.inefficiency(),
        wall_ms: 0.0,
    };
    let text = export(&rec, &meta, Some(&summary));

    // Every line is standalone JSON (the JSONL contract).
    for line in text.lines() {
        universal_networks::obs::json::parse(line)
            .unwrap_or_else(|e| panic!("invalid JSONL line {line:?}: {e}"));
    }

    let doc = parse_trace(&text).expect("trace parses with balanced spans");

    // Meta and summary survive verbatim.
    assert_eq!(doc.meta.guest, "ring:24");
    assert_eq!(doc.meta.n, 24);
    assert_eq!(doc.meta.m, 9);
    let s = doc.summary.as_ref().expect("summary line present");
    assert_eq!(s.host_steps, run.protocol.host_steps() as u64);
    assert!((s.slowdown - run.slowdown()).abs() < 1e-12);

    // Counters from both the simulator and the checker survive.
    assert_eq!(doc.counter("sim.guest_steps"), Some(steps as u64));
    assert_eq!(
        doc.counter("sim.comm_steps").unwrap() + doc.counter("sim.compute_steps").unwrap(),
        run.protocol.host_steps() as u64
    );
    assert!(doc.counter("route.packets").unwrap() > 0);
    assert!(doc.counter("pebble.acquisitions").unwrap() > 0);

    // Histograms survive exactly: one routing-problem-size sample per
    // guest step, and the in-memory copy matches the parsed one.
    let parsed = doc.histogram("sim.routing_problem_size").expect("hist recorded");
    let live = rec.histogram_data("sim.routing_problem_size").unwrap();
    assert_eq!(parsed.count, steps as u64);
    assert_eq!(parsed.count, live.count);
    assert_eq!(parsed.min, live.min);
    assert_eq!(parsed.max, live.max);
    assert_eq!(parsed.buckets, live.buckets);

    // Span phases survive with sane nesting totals: the checker ran once,
    // the comm phase once per guest step.
    let totals = doc.span_totals();
    let find = |name: &str| totals.iter().find(|(n, ..)| n == name).map(|(_, ns, c)| (*ns, *c));
    let (_, comm_count) = find("sim.comm").expect("sim.comm span");
    assert_eq!(comm_count, steps as u64);
    let (check_ns, check_count) = find("pebble.check").expect("pebble.check span");
    assert_eq!(check_count, 1);
    assert!(check_ns > 0);
}

#[test]
fn legacy_v2_trace_reads_identically_through_the_v4_reader() {
    // Record a real run and export it as the current unet-trace/4 schema.
    let guest = ring(12);
    let host = torus(2, 2);
    let steps = 3u32;
    let comp = GuestComputation::random(guest.clone(), 0xCAFE);
    let router = presets::bfs();
    let mut rec = InMemoryRecorder::new();
    let run = Simulation::builder()
        .guest(&comp)
        .host(&host)
        .embedding(Embedding::block(guest.n(), host.n()))
        .router(&router)
        .steps(steps)
        .seed(2)
        .recorder(&mut rec)
        .run()
        .expect("configuration is valid");
    check_recorded(&guest, &host, &run.protocol, &mut rec).expect("run certifies");
    let meta = RunMeta {
        command: "test".into(),
        guest: "ring:12".into(),
        host: "torus:2x2".into(),
        n: guest.n() as u64,
        m: host.n() as u64,
        guest_steps: steps as u64,
    };
    let v3 = export(&rec, &meta, None);
    assert!(v3.contains("unet-trace/4"));

    // Rewrite it as the trace a /2 writer would have produced: the /2
    // schema tag, and no per-step sample records (introduced in /3; the
    // /4 request records only come from the serving tier, so a recorder
    // export carries none either way).
    let v2: String = v3
        .lines()
        .filter(|l| !l.contains("\"type\":\"sample\""))
        .map(|l| l.replace("\"schema\":\"unet-trace/4\"", "\"schema\":\"unet-trace/2\"") + "\n")
        .collect();
    assert!(v2.contains("unet-trace/2"));

    // The /4 reader accepts the legacy document…
    let doc2 = parse_trace(&v2).expect("legacy /2 trace parses");
    let doc3 = parse_trace(&v3).expect("current /4 trace parses");
    assert_eq!(doc2.counters, doc3.counters);
    assert!(doc2.samples.is_empty(), "/2 traces carry no samples");
    assert!(!doc3.samples.is_empty(), "/4 traces carry telemetry");

    // …and the streaming analyzer aggregates both to the same counters,
    // histograms, and span totals — only the sample series differ.
    let a2 = analyze_str(&v2).expect("analyzer reads /2");
    let a3 = analyze_str(&v3).expect("analyzer reads /4");
    assert_eq!(a2.schema, "unet-trace/2");
    assert_eq!(a3.schema, "unet-trace/4");
    assert_eq!(a2.counters, a3.counters);
    assert_eq!(a2.gauges, a3.gauges);
    assert_eq!(a2.histograms, a3.histograms);
    assert_eq!(a2.span_totals, a3.span_totals);
    assert_eq!(a2.critical_path, a3.critical_path);
    assert!(a2.series.is_empty());
    assert!(!a3.series.is_empty());
}
