//! End-to-end tests of the serving layer: admission control, deadlines,
//! graceful drain, shared-cache behaviour, and the metrics round trip.

use unet_obs::json::Value;
use unet_obs::{MetricsRegistry, TraceAnalyzer};
use unet_serve::client::request_line;
use unet_serve::loadgen::{self, LoadgenConfig};
use unet_serve::protocol::{
    analyze_request_line, metrics_request_line, parse_response, simulate_request_line, Response,
    SimulateReq,
};
use unet_serve::{ServeConfig, Server};

fn sim_req(seed: u64) -> SimulateReq {
    SimulateReq {
        guest: "ring:24".into(),
        host: "torus:3x3".into(),
        steps: 3,
        seed,
        deadline_ms: None,
        id: Some(seed),
    }
}

fn start(workers: usize, queue_cap: usize) -> Server {
    Server::start(ServeConfig { workers, queue_cap, ..ServeConfig::default() })
        .expect("bind on 127.0.0.1:0")
}

#[test]
fn simulate_request_round_trips_and_verifies() {
    let server = start(2, 8);
    let addr = server.addr().to_string();
    let resp = request_line(&addr, &simulate_request_line(&sim_req(7))).expect("round trip");
    match parse_response(&resp).expect("valid response") {
        Response::Result(v) => {
            assert_eq!(v.get("req").and_then(Value::as_str), Some("simulate"));
            assert_eq!(v.get("id").and_then(Value::as_u64), Some(7));
            assert_eq!(v.get("verified"), Some(&Value::Bool(true)));
            assert!(v.get("slowdown").and_then(Value::as_f64).unwrap() >= 1.0);
            assert!(v.get("host_steps").and_then(Value::as_u64).unwrap() > 0);
        }
        other => panic!("expected result, got {other:?}"),
    }
    let report = server.drain();
    assert_eq!(report.stats.admitted, 1);
    assert_eq!(report.stats.completed, 1);
    assert_eq!(report.stats.rejected, 0);
}

#[test]
fn bad_specs_and_bad_requests_get_typed_errors() {
    let server = start(1, 8);
    let addr = server.addr().to_string();
    let mut bad_spec = sim_req(1);
    bad_spec.guest = "blah:3".into();
    let resp = request_line(&addr, &simulate_request_line(&bad_spec)).expect("io");
    match parse_response(&resp).expect("valid") {
        Response::Error { code, message, id } => {
            assert_eq!(code, "bad-spec");
            assert!(message.contains("unknown graph family"));
            assert_eq!(id, Some(1));
        }
        other => panic!("expected error, got {other:?}"),
    }
    let resp = request_line(&addr, "this is not json").expect("io");
    match parse_response(&resp).expect("valid") {
        Response::Error { code, .. } => assert_eq!(code, "bad-request"),
        other => panic!("expected error, got {other:?}"),
    }
    server.drain();
}

#[test]
fn zero_queue_cap_rejects_with_typed_overloaded() {
    let server = start(1, 0);
    let addr = server.addr().to_string();
    let resp = request_line(&addr, &metrics_request_line(None)).expect("rejection is a response");
    assert_eq!(parse_response(&resp).expect("valid"), Response::Overloaded { queue_cap: 0 });
    let report = server.drain();
    assert_eq!(report.stats.rejected, 1);
    assert_eq!(report.stats.admitted, 0);
}

#[test]
fn zero_deadline_is_cancelled_at_a_phase_boundary() {
    let server = start(1, 8);
    let addr = server.addr().to_string();
    let mut req = sim_req(3);
    req.deadline_ms = Some(0);
    let resp = request_line(&addr, &simulate_request_line(&req)).expect("io");
    match parse_response(&resp).expect("valid") {
        Response::Error { code, .. } => assert_eq!(code, "deadline-exceeded"),
        other => panic!("expected deadline error, got {other:?}"),
    }
    server.drain();
}

#[test]
fn repeated_workload_hits_shared_cache_and_drains_clean() {
    let server = start(2, 32);
    let addr = server.addr().to_string();
    let report = loadgen::run(&LoadgenConfig {
        addr,
        clients: 2,
        requests_per_client: 8,
        guest: "ring:24".into(),
        host: "torus:3x3".into(),
        steps: 3,
        seed: 7,
        deadline_ms: None,
        warmup: true,
    })
    .expect("loadgen run");
    assert_eq!(report.sent, 17, "warm-up + 2 clients x 8");
    assert_eq!(report.completed, 17, "nothing rejected or errored");
    assert_eq!(report.rejected, 0);
    assert_eq!(report.errors, 0);
    assert!(report.percentile_ms(99.0).is_some());

    let drained = server.drain();
    // Zero dropped in-flight requests across the drain.
    assert_eq!(drained.stats.completed, 17);
    assert_eq!(drained.stats.admitted, 3, "warm-up + one connection per client");
    // One workload, one compile: everything after the warm-up hits.
    assert_eq!(drained.stats.shared_misses, 1);
    assert_eq!(drained.stats.shared_hits, 16);
    assert!(drained.stats.hit_ratio().unwrap() > 0.9, "route-plan cache hit ratio > 0.9");
}

#[test]
fn responses_survive_a_drain_started_after_send() {
    // A request answered while the server drains must still reach the
    // client: send, drain, *then* read.
    use std::io::{BufRead, BufReader, Write};
    let server = start(1, 8);
    let addr = server.addr().to_string();
    let mut stream = std::net::TcpStream::connect(&addr).expect("connect");
    writeln!(stream, "{}", simulate_request_line(&sim_req(5))).expect("send");
    stream.flush().expect("flush");
    // Wait until the request is admitted so drain cannot race the accept.
    while server.stats().admitted == 0 {
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let report = server.drain();
    assert_eq!(report.stats.completed, 1, "in-flight request answered during drain");
    let mut response = String::new();
    BufReader::new(stream).read_line(&mut response).expect("response readable after drain");
    assert!(matches!(parse_response(response.trim()), Ok(Response::Result(_))));
}

#[test]
fn metrics_and_analyze_requests_expose_prometheus_text() {
    let server = start(2, 8);
    let addr = server.addr().to_string();
    request_line(&addr, &simulate_request_line(&sim_req(2))).expect("simulate");
    let resp = request_line(&addr, &metrics_request_line(Some(9))).expect("metrics");
    let exposition = match parse_response(&resp).expect("valid") {
        Response::Result(v) => v.get("exposition").and_then(Value::as_str).unwrap().to_string(),
        other => panic!("expected result, got {other:?}"),
    };
    assert!(exposition.contains("# TYPE unet_serve_conns_admitted counter"));
    assert!(exposition.contains("unet_sim_guest_steps 3"));
    assert!(exposition.contains("unet_serve_cache_shared_misses 1"));

    // analyze: round-trip a trace through the wire protocol.
    let trace: Vec<String> = {
        use unet_obs::trace::{export, RunMeta};
        use unet_obs::{InMemoryRecorder, Recorder};
        let mut rec = InMemoryRecorder::new();
        rec.counter("sim.cache.hits", 4);
        let meta = RunMeta {
            command: "t".into(),
            guest: "g".into(),
            host: "h".into(),
            n: 1,
            m: 1,
            guest_steps: 1,
        };
        export(&rec, &meta, None).lines().map(str::to_string).collect()
    };
    let resp = request_line(&addr, &analyze_request_line(&trace, None)).expect("analyze");
    match parse_response(&resp).expect("valid") {
        Response::Result(v) => {
            assert_eq!(v.get("lines").and_then(Value::as_u64), Some(trace.len() as u64));
            let expo = v.get("exposition").and_then(Value::as_str).unwrap();
            assert!(expo.contains("unet_sim_cache_hits 4"));
        }
        other => panic!("expected result, got {other:?}"),
    }
    // Malformed trace lines surface as typed bad-trace errors.
    let resp =
        request_line(&addr, &analyze_request_line(&["not json".to_string()], Some(3))).expect("io");
    match parse_response(&resp).expect("valid") {
        Response::Error { code, message, id } => {
            assert_eq!(code, "bad-trace");
            assert!(message.contains("line 1"));
            assert_eq!(id, Some(3));
        }
        other => panic!("expected error, got {other:?}"),
    }
    server.drain();
}

#[test]
fn drained_exposition_parses_back_through_the_streaming_analyzer() {
    // Satellite: a MetricsRegistry built from a live serve run must parse
    // back with the analyzer's line discipline — the drain trace is valid
    // JSONL and from_analysis reproduces the server counters.
    let server = start(1, 8);
    let addr = server.addr().to_string();
    for seed in 0..3 {
        request_line(&addr, &simulate_request_line(&sim_req(seed))).expect("simulate");
    }
    let report = server.drain();
    assert_eq!(report.stats.completed, 3);

    let mut analyzer = TraceAnalyzer::new();
    for (i, line) in report.trace.lines().enumerate() {
        analyzer.feed_line(line, i + 1).expect("drain trace is valid JSONL");
    }
    let analysis = analyzer.finish().expect("complete trace");
    let reg = MetricsRegistry::from_analysis(&analysis);
    assert_eq!(reg.counter("serve.requests.completed"), Some(3));
    assert_eq!(reg.counter("serve.conns.admitted"), Some(3));
    assert_eq!(reg.counter("sim.guest_steps"), Some(9), "3 runs x 3 steps merged");
    // The re-derived exposition carries the same server series the live
    // one did (the live one additionally overlays cache atomics).
    let expo = reg.expose();
    assert!(expo.contains("unet_serve_requests_completed 3"));
    assert!(report.exposition.contains("unet_serve_requests_completed 3"));
    assert!(report.exposition.contains("unet_serve_cache_hit_ratio"));
}
