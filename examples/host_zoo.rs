//! Experiments E8 + E9 + E10: which networks make good universal hosts, and
//! what redundancy buys (or doesn't).
//!
//! 1. E8 — same guest, hosts of (nearly) equal size `m`: butterfly vs torus
//!    vs mesh vs ring vs expander vs Beneš vs the Galil–Paul hypercube.
//!    Good routers (butterfly/Beneš/expander) pay ≈ `(n/m)·log m`; meshes
//!    pay `√m`; rings pay `m`.
//! 2. E9 — the flooding (max-redundancy) baseline vs the static embedding:
//!    for `m ≤ n` redundancy buys nothing (the paper's conclusion).
//! 3. E10 — the tree host: constant slowdown for short computations at
//!    `2^{O(T)}·n` size (the Section 1 remark).
//!
//! Run with: `cargo run --release --example host_zoo`

use universal_networks::core::flooding::flooding_protocol;
use universal_networks::core::galil_paul::GalilPaulRouter;
use universal_networks::core::prelude::*;
use universal_networks::core::routers::{OfflineBenesRouter, Router};
use universal_networks::core::treesim::{build_tree_host, tree_protocol};
use universal_networks::pebble::check;
use universal_networks::routing::benes::benes_network;
use universal_networks::topology::generators::{
    butterfly, hypercube, mesh, random_hamiltonian_union, random_regular, ring, torus,
};
use universal_networks::topology::util::seeded_rng;
use universal_networks::topology::Graph;

fn run_host(
    name: &str,
    guest: &Graph,
    comp: &GuestComputation,
    host: &Graph,
    embedding: Embedding,
    router: &dyn Router,
    steps: u32,
) {
    let mut rng = seeded_rng(17);
    let sim = EmbeddingSimulator { embedding, router };
    let run = sim.simulate(comp, host, steps, &mut rng);
    let v = verify_run(comp, host, &run, steps).expect("certifies");
    let m = host.n();
    let n = guest.n();
    println!(
        "{name:>22} m={m:>4}  s={:>8.1}  s/load={:>6.2}  k={:>7.2}",
        v.metrics.slowdown,
        v.metrics.slowdown / bounds::load_bound(n, m),
        v.metrics.inefficiency
    );
}

fn main() {
    let n = 1024;
    let steps = 3;
    let mut rng = seeded_rng(5);
    let guest = random_regular(n, 4, &mut rng);
    let comp = GuestComputation::random(guest.clone(), 23);

    println!("== E8: host zoo (guest: random 4-regular, n = {n}, T = {steps}) ==");
    // Butterfly dim 4: m = 80.
    let bf = butterfly(4);
    let r = presets::butterfly_valiant(4);
    run_host("butterfly+valiant", &guest, &comp, &bf, Embedding::block(n, bf.n()), &r, steps);
    // Torus 9×9: m = 81.
    let t = torus(9, 9);
    let r = presets::torus_xy(9, 9);
    run_host("torus+xy", &guest, &comp, &t, Embedding::block(n, t.n()), &r, steps);
    // Mesh 9×9.
    let me = mesh(9, 9);
    let r = presets::mesh_xy(9, 9);
    run_host("mesh+xy", &guest, &comp, &me, Embedding::block(n, me.n()), &r, steps);
    // Ring of 80.
    let rg = ring(80);
    let r = presets::bfs();
    run_host("ring+bfs", &guest, &comp, &rg, Embedding::block(n, rg.n()), &r, steps);
    // Random 4-regular expander of 80.
    let ex = random_hamiltonian_union(80, 2, &mut rng);
    let r = presets::bfs();
    run_host("expander+bfs", &guest, &comp, &ex, Embedding::block(n, ex.n()), &r, steps);
    // Beneš on 16 rows: m = 8·16 = 128; guests embedded on column 0.
    let bn = benes_network(4);
    let col0: Vec<u32> = (0..16).collect();
    let f: Vec<u32> = (0..n).map(|i| col0[i * 16 / n]).collect();
    let r = OfflineBenesRouter { dim: 4 };
    run_host("benes+waksman", &guest, &comp, &bn, Embedding::new(f, bn.n()), &r, steps);
    // Galil–Paul hypercube of 64.
    let hc = hypercube(6);
    let r = GalilPaulRouter { k: 6 };
    run_host("hypercube+sorting", &guest, &comp, &hc, Embedding::block(n, hc.n()), &r, steps);

    println!("\n== E9: redundancy vs static embedding (m = 81 ≤ n) ==");
    let flood = flooding_protocol(&comp, 81, steps);
    check(&guest, &t, &flood).expect("flooding certifies");
    println!(
        "{:>22} m={:>4}  s={:>8.1}  k={:>7.2}   (maximal redundancy, no communication)",
        "flooding",
        81,
        flood.slowdown(),
        flood.inefficiency()
    );
    println!("→ the static embedding beats full redundancy by ≈ the Θ(log m)/m factor,");
    println!("  matching the paper's conclusion that dynamics don't help for m ≤ n.");

    println!("\n== E10: tree host for short computations ==");
    let short_guest = random_regular(64, 4, &mut rng);
    let short_comp = GuestComputation::random(short_guest.clone(), 9);
    for t_short in 1..=3u32 {
        let th = build_tree_host(&short_guest, t_short);
        let proto = tree_protocol(&short_comp, &th, t_short);
        check(&short_guest, &th.graph, &proto).expect("tree protocol certifies");
        println!(
            "T = {t_short}: host size {:>6} = 2^O(T)·n,  slowdown {:>4.1} (constant)",
            th.graph.n(),
            proto.slowdown()
        );
    }
    println!("→ constant slowdown, exponential size: why Theorem 3.1 needs T ≥ 2√(log m).");
}
