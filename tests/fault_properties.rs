//! Property-based tests (proptest) on the fault subsystem: determinism of
//! plans, views, fault-aware routing, and whole degraded runs, plus the
//! structural guarantee that a faulty view never invents edges.

use proptest::prelude::*;
use universal_networks::core::prelude::*;
use universal_networks::faults::{route_faulty, DegradedSimulator, FaultPlan, FaultyView};
use universal_networks::pebble::check;
use universal_networks::routing::ShortestPath;
use universal_networks::topology::generators::{random_regular, torus};
use universal_networks::topology::util::seeded_rng;
use universal_networks::topology::Node;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Same seed + parameters ⇒ identical plan, identical view evolution,
    /// identical surviving graph.
    #[test]
    fn fault_plans_and_views_are_deterministic(
        seed in 0u64..1000,
        side in 3usize..6,
        rate in 0u32..40,
    ) {
        let host = torus(side, side);
        let rate = rate as f64 / 100.0;
        let plan_a = FaultPlan::crashes(&host, rate, 1, seed)
            .merge(FaultPlan::link_cuts(&host, rate, 2, seed ^ 1))
            .merge(FaultPlan::link_flaps(&host, rate, 1, 2, seed ^ 2));
        let plan_b = FaultPlan::crashes(&host, rate, 1, seed)
            .merge(FaultPlan::link_cuts(&host, rate, 2, seed ^ 1))
            .merge(FaultPlan::link_flaps(&host, rate, 1, 2, seed ^ 2));
        prop_assert_eq!(&plan_a, &plan_b);

        let mut va = FaultyView::new(&host, &plan_a);
        let mut vb = FaultyView::new(&host, &plan_b);
        for t in 0..5 {
            prop_assert_eq!(va.advance_to(t), vb.advance_to(t));
            prop_assert_eq!(va.surviving(), vb.surviving());
            let (ga, relabel_a) = va.alive_graph();
            let (gb, relabel_b) = vb.alive_graph();
            prop_assert_eq!(relabel_a, relabel_b);
            prop_assert_eq!(ga.n(), gb.n());
            prop_assert_eq!(
                ga.edges().collect::<Vec<_>>(),
                gb.edges().collect::<Vec<_>>()
            );
        }
    }

    /// A faulty view only ever removes: every live edge is a base edge and
    /// joins live endpoints, at every boundary.
    #[test]
    fn faulty_view_never_yields_non_base_edges(
        seed in 0u64..1000,
        side in 3usize..6,
        t_max in 1u32..5,
    ) {
        let host = torus(side, side);
        let plan = FaultPlan::crashes(&host, 0.2, 1, seed)
            .merge(FaultPlan::link_cuts(&host, 0.2, 1, seed ^ 9))
            .merge(FaultPlan::link_flaps(&host, 0.2, 2, 1, seed ^ 7));
        let mut view = FaultyView::new(&host, &plan);
        for t in 0..=t_max {
            view.advance_to(t);
            let m = host.n() as Node;
            for u in 0..m {
                for v in 0..m {
                    if view.is_edge_up(u, v) {
                        prop_assert!(host.has_edge(u, v), "invented edge ({u}, {v})");
                        prop_assert!(view.is_node_up(u) && view.is_node_up(v));
                    }
                }
            }
            let (alive, relabel) = view.alive_graph();
            for (a, b) in alive.edges() {
                prop_assert!(host.has_edge(relabel[a as usize], relabel[b as usize]));
            }
        }
    }

    /// Fault-aware routing is a pure function of (view, pairs): identical
    /// inputs give identical outcomes, including the engine schedule.
    #[test]
    fn fault_aware_routing_is_deterministic(
        seed in 0u64..1000,
        side in 3usize..6,
    ) {
        let host = torus(side, side);
        let m = host.n() as Node;
        let plan = FaultPlan::crashes(&host, 0.15, 1, seed);
        let pairs: Vec<(Node, Node)> = (0..m).map(|i| (i, (i * 7 + 3) % m)).collect();
        let mut va = FaultyView::new(&host, &plan);
        let mut vb = FaultyView::new(&host, &plan);
        va.advance_to(1);
        vb.advance_to(1);
        let a = route_faulty(&va, &pairs);
        let b = route_faulty(&vb, &pairs);
        prop_assert_eq!(a.delivered, b.delivered);
        prop_assert_eq!(a.dropped_pairs, b.dropped_pairs);
        prop_assert_eq!(a.retried, b.retried);
        match (a.outcome, b.outcome) {
            (Some(oa), Some(ob)) => {
                prop_assert_eq!(oa.steps, ob.steps);
                prop_assert_eq!(oa.transfers, ob.transfers);
                prop_assert_eq!(oa.delivered_at, ob.delivered_at);
            }
            (None, None) => {}
            _ => prop_assert!(false, "one run routed, the other dropped everything"),
        }
    }

    /// Whole degraded runs are reproducible: same seed + plan ⇒ identical
    /// certified protocol, identical fault log, identical final states —
    /// and both certify and match direct execution.
    #[test]
    fn degraded_runs_are_deterministic_and_certified(
        seed in 0u64..500,
        side in 3usize..5,
        steps in 2u32..4,
    ) {
        let host = torus(side, side);
        let n = host.n() * 3;
        let guest = random_regular(n, 4, &mut seeded_rng(seed));
        let comp = GuestComputation::random(guest.clone(), seed ^ 0xC);
        let sim = DegradedSimulator {
            embedding: Embedding::block(n, host.n()),
            plan: FaultPlan::crashes(&host, 0.2, 2, seed ^ 0xD),
            selector: Some(ShortestPath),
        };
        let a = sim.simulate(&comp, &host, steps, &mut seeded_rng(seed)).unwrap();
        let b = sim.simulate(&comp, &host, steps, &mut seeded_rng(seed)).unwrap();
        prop_assert_eq!(&a.run.protocol.steps, &b.run.protocol.steps);
        prop_assert_eq!(&a.fault_log, &b.fault_log);
        prop_assert_eq!(&a.run.final_states, &b.run.final_states);
        prop_assert_eq!(a.replayed, b.replayed);
        prop_assert_eq!(a.retried, b.retried);
        check(&guest, &host, &a.run.protocol).expect("certifies");
        prop_assert_eq!(a.run.final_states, comp.run_final(steps));
    }
}
