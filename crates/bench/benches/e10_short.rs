//! E10 — the `2^{O(T)}·n` tree hosts for short computations.
//!
//! Regenerates the size/slowdown scaling of the unfolding-tree construction
//! (Section 1's remark): constant slowdown, exponential size — the reason
//! Theorem 3.1 restricts to computations of length `≥ 2√(log m)`. Then
//! times host construction and protocol generation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use unet_bench::standard_guest;
use unet_core::treesim::{build_tree_host, tree_host_size, tree_protocol};
use unet_pebble::check;

fn regenerate_table() {
    let n = 64;
    let (guest, comp) = standard_guest(n, 0xE10);
    println!("\n=== E10: tree hosts for short computations (guest n = {n}, c = 4) ===");
    println!("{:>3} {:>10} {:>12} {:>10} {:>8}", "T", "host size", "2^O(T)·n", "slowdown", "k");
    for t in 1..=4u32 {
        let host = build_tree_host(&guest, t);
        let proto = tree_protocol(&comp, &host, t);
        check(&guest, &host.graph, &proto).expect("certifies");
        println!(
            "{t:>3} {:>10} {:>12} {:>10.1} {:>8.1}",
            host.graph.n(),
            tree_host_size(n, 4, t),
            proto.slowdown(),
            proto.inefficiency()
        );
    }
    println!("slowdown stays constant (= c + 2); size multiplies by (c+1) per extra step.");
}

fn bench(c: &mut Criterion) {
    regenerate_table();
    let (guest, comp) = standard_guest(64, 0xE10);
    let mut group = c.benchmark_group("e10_short");
    group.sample_size(10);
    for t in [2u32, 3] {
        group.bench_with_input(BenchmarkId::new("build_host", t), &t, |b, &t| {
            b.iter(|| build_tree_host(&guest, t).graph.n());
        });
        let host = build_tree_host(&guest, t);
        group.bench_with_input(BenchmarkId::new("protocol+check", t), &t, |b, &t| {
            b.iter(|| {
                let p = tree_protocol(&comp, &host, t);
                check(&guest, &host.graph, &p).unwrap().host_steps
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
