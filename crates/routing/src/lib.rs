//! # unet-routing — the routing substrate of Section 2
//!
//! Theorem 2.1 reduces universal simulation (for `m ≤ n`) to `h–h` packet
//! routing: any host `M` is `n`-universal with slowdown `O(route_M(n/m))`.
//! This crate provides everything behind `route_M(h)`:
//!
//! * [`packet`] — a synchronous store-and-forward engine enforcing the
//!   paper's one-send/one-receive-per-step port model;
//! * [`problem`] — `h–h` routing problems and classic adversarial patterns;
//! * [`greedy`] — dimension-order routing on meshes/tori;
//! * [`butterfly`] — greedy bit-fixing and Valiant's randomized routing;
//! * [`benes`] — the Beneš network and Waksman's looping algorithm: offline
//!   permutation routing with stage-congestion 1, pipelined into offline
//!   `h–h` schedules (the Waksman \[19\] citation of Section 2);
//! * [`decompose`] — `h–h` relations → permutations by Euler splits;
//! * [`sortnet`] — Batcher's bitonic network (documented AKS substitute) for
//!   sorting-based routing à la Galil–Paul;
//! * [`metrics`] — empirical `route_G(h)` measurement;
//! * [`plan`] — replayable route plans: the step-invariant matching
//!   decomposition extracted once and replayed with fresh payloads.
//!
//! ```
//! use unet_routing::benes::{waksman_paths, verify_waksman};
//!
//! // Waksman's looping algorithm realizes any permutation on the Beneš
//! // network with stage-congestion 1 — the offline routing of Section 2.
//! let perm = vec![3, 0, 2, 1];
//! let paths = waksman_paths(&perm);
//! verify_waksman(&perm, &paths).expect("congestion-1 realization");
//! assert_eq!(paths[0][0], 0);              // packet 0 enters at row 0…
//! assert_eq!(*paths[0].last().unwrap(), 3); // …and exits at row perm[0].
//! ```

#![deny(missing_docs)]

pub mod benes;
pub mod butterfly;
pub mod decompose;
pub mod greedy;
pub mod metrics;
pub mod packet;
pub mod plan;
pub mod problem;
pub mod sortnet;

pub use packet::{
    route, Discipline, Outcome, Packet, PathSelector, RouteError, ShortestPath, Transfer,
};
pub use plan::{extract_plan, PlanCache, RoutePlan};
pub use problem::RoutingProblem;
