//! The remaining classic constant-degree networks named in the paper's
//! introduction: paths, rings, cube-connected cycles, shuffle-exchange,
//! de Bruijn, hypercubes, complete graphs, and trees.

use crate::graph::{Graph, GraphBuilder, Node};

/// Path on `n` vertices (`0–1–…–(n−1)`).
pub fn path(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.add_edge((v - 1) as Node, v as Node);
    }
    b.build()
}

/// Ring (cycle) on `n` vertices.
pub fn ring(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    if n >= 2 {
        for v in 1..n {
            b.add_edge((v - 1) as Node, v as Node);
        }
        if n >= 3 {
            b.add_edge((n - 1) as Node, 0);
        }
    }
    b.build()
}

/// Cube-connected cycles of dimension `d`: `d · 2^d` vertices `(i, w)` with
/// cycle position `i ∈ [d]` and hypercube corner `w ∈ {0,1}^d`. Cycle edges
/// `(i,w)–(i+1 mod d, w)` and hypercube edges `(i,w)–(i, w ⊕ 2^i)`.
/// 3-regular for `d ≥ 3`.
pub fn cube_connected_cycles(d: usize) -> Graph {
    assert!(d >= 1);
    let corners = 1usize << d;
    let idx = |i: usize, w: usize| (w * d + i) as Node;
    let mut b = GraphBuilder::new(d * corners);
    for w in 0..corners {
        for i in 0..d {
            let next = (i + 1) % d;
            if idx(i, w) != idx(next, w) {
                b.add_edge(idx(i, w), idx(next, w));
            }
            b.add_edge(idx(i, w), idx(i, w ^ (1 << i)));
        }
    }
    b.build()
}

/// Shuffle-exchange network on `2^d` vertices: exchange edges `w–(w ⊕ 1)` and
/// shuffle edges `w–rot(w)` (cyclic left rotation of the `d` bits). Degree ≤ 3.
pub fn shuffle_exchange(d: usize) -> Graph {
    assert!(d >= 1);
    let n = 1usize << d;
    let rot = |w: usize| ((w << 1) | (w >> (d - 1))) & (n - 1);
    let mut b = GraphBuilder::new(n);
    for w in 0..n {
        b.add_edge(w as Node, (w ^ 1) as Node);
        let r = rot(w);
        if r != w {
            b.add_edge(w as Node, r as Node);
        }
    }
    b.build()
}

/// De Bruijn graph on `2^d` vertices: edges `w–(2w mod n)` and
/// `w–(2w+1 mod n)`. Degree ≤ 4.
pub fn de_bruijn(d: usize) -> Graph {
    assert!(d >= 1);
    let n = 1usize << d;
    let mut b = GraphBuilder::new(n);
    for w in 0..n {
        for bit in 0..2usize {
            let t = ((w << 1) | bit) & (n - 1);
            if t != w {
                b.add_edge(w as Node, t as Node);
            }
        }
    }
    b.build()
}

/// Hypercube of dimension `d` (degree `d` — *not* constant degree; included
/// as a comparison topology, as in the simulation literature the paper cites).
pub fn hypercube(d: usize) -> Graph {
    let n = 1usize << d;
    let mut b = GraphBuilder::new(n);
    for w in 0..n {
        for i in 0..d {
            let t = w ^ (1 << i);
            if w < t {
                b.add_edge(w as Node, t as Node);
            }
        }
    }
    b.build()
}

/// Complete network `K_n` (degree `n − 1`; the guest class of \[14\]'s
/// complete-network simulations).
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for u in 0..n as Node {
        for v in (u + 1)..n as Node {
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// Complete binary tree with `depth` levels of edges (`2^{depth+1} − 1`
/// vertices, root = 0, children of `v` are `2v+1`, `2v+2`). Degree ≤ 3.
pub fn binary_tree(depth: usize) -> Graph {
    let n = (1usize << (depth + 1)) - 1;
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        for c in [2 * v + 1, 2 * v + 2] {
            if c < n {
                b.add_edge(v as Node, c as Node);
            }
        }
    }
    b.build()
}

/// X-tree: complete binary tree plus edges between adjacent vertices of each
/// level. Degree ≤ 5; constant-degree host with slightly better routing than
/// the plain tree.
pub fn x_tree(depth: usize) -> Graph {
    let n = (1usize << (depth + 1)) - 1;
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        for c in [2 * v + 1, 2 * v + 2] {
            if c < n {
                b.add_edge(v as Node, c as Node);
            }
        }
    }
    // Level ℓ spans indices [2^ℓ − 1, 2^{ℓ+1} − 2].
    for level in 1..=depth {
        let lo = (1usize << level) - 1;
        let hi = (1usize << (level + 1)) - 2;
        for v in lo..hi {
            b.add_edge(v as Node, (v + 1) as Node);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{diameter_exact, is_connected};

    #[test]
    fn path_and_ring() {
        assert_eq!(path(5).num_edges(), 4);
        assert_eq!(ring(5).num_edges(), 5);
        assert_eq!(ring(5).is_regular(), Some(2));
        assert_eq!(ring(2).num_edges(), 1);
        assert_eq!(ring(1).num_edges(), 0);
        assert_eq!(diameter_exact(&ring(8)), 4);
    }

    #[test]
    fn ccc_regularity() {
        for d in 3..6 {
            let g = cube_connected_cycles(d);
            assert_eq!(g.n(), d << d);
            assert_eq!(g.is_regular(), Some(3), "d = {d}");
            assert!(is_connected(&g));
        }
    }

    #[test]
    fn ccc_small_dims() {
        // d = 1: 2 vertices, single hypercube edge; cycle edges collapse.
        let g = cube_connected_cycles(1);
        assert_eq!(g.n(), 2);
        assert_eq!(g.num_edges(), 1);
        // d = 2: cycles of length 2 deduplicate.
        let g2 = cube_connected_cycles(2);
        assert_eq!(g2.n(), 8);
        assert!(g2.max_degree() <= 3);
        assert!(is_connected(&g2));
    }

    #[test]
    fn shuffle_exchange_degree() {
        for d in 2..8 {
            let g = shuffle_exchange(d);
            assert_eq!(g.n(), 1 << d);
            assert!(g.max_degree() <= 3, "d = {d}");
            assert!(is_connected(&g));
        }
    }

    #[test]
    fn de_bruijn_degree_and_connectivity() {
        for d in 2..8 {
            let g = de_bruijn(d);
            assert_eq!(g.n(), 1 << d);
            assert!(g.max_degree() <= 4, "d = {d}");
            assert!(is_connected(&g));
        }
        // Diameter of de Bruijn on 2^d nodes is d.
        assert_eq!(diameter_exact(&de_bruijn(5)), 5);
    }

    #[test]
    fn hypercube_structure() {
        let g = hypercube(4);
        assert_eq!(g.n(), 16);
        assert_eq!(g.is_regular(), Some(4));
        assert_eq!(diameter_exact(&g), 4);
    }

    #[test]
    fn complete_graph() {
        let g = complete(6);
        assert_eq!(g.num_edges(), 15);
        assert_eq!(g.is_regular(), Some(5));
        assert_eq!(diameter_exact(&g), 1);
    }

    #[test]
    fn binary_tree_structure() {
        let g = binary_tree(3);
        assert_eq!(g.n(), 15);
        assert_eq!(g.num_edges(), 14);
        assert!(g.max_degree() <= 3);
        assert_eq!(diameter_exact(&g), 6);
    }

    #[test]
    fn x_tree_structure() {
        let g = x_tree(3);
        assert_eq!(g.n(), 15);
        assert!(g.max_degree() <= 5);
        // X-tree strictly denser than tree.
        assert!(g.num_edges() > binary_tree(3).num_edges());
        assert!(is_connected(&g));
    }
}
