//! # unet-pebble — the pebble-game simulation model
//!
//! Executable version of the simulation model of Section 3.1 of *"Optimal
//! Trade-Offs Between Size and Slowdown for Universal Parallel Networks"*
//! (Meyer auf der Heide, Storch, Wanka; SPAA 1995): the most general dynamic
//! simulation model known, in which a host processor per step may generate a
//! pebble `(P_i, t)` (the configuration of guest `P_i` at guest time `t`)
//! from locally held predecessor pebbles, send a copy of a pebble to a
//! neighbour, or receive one.
//!
//! * [`protocol`] — the protocol format and builder;
//! * [`check`](fn@crate::check) — full validity checking (every rule of the model) and the
//!   custody [`check::Trace`] exposing `Q_S(i,t)` / `Q'_S(i,t)`;
//! * [`analysis`] — weights, metrics, heavy-processor accounting
//!   (Definition 3.11, Lemma 3.15);
//! * [`fragment`] — fragments `(B, B', D)` and the multiplicity bound
//!   (Definition 3.2, Lemma 3.3);
//! * [`depgraph`] — the dependency graph `Γ_G` (Definition 3.7);
//! * [`deptree`] — constructive, machine-verified dependency trees
//!   (Lemma 3.10, Figure 1).
//!
//! ```
//! use unet_pebble::{check, Op, Pebble, ProtocolBuilder};
//! use unet_topology::generators::{complete, ring};
//!
//! // Simulate one step of a 3-ring guest on a 2-processor host: host 0
//! // holds all initial pebbles, so it can generate every (P_i, 1).
//! let guest = ring(3);
//! let host = complete(2);
//! let mut b = ProtocolBuilder::new(3, 1, 2);
//! for i in 0..3 {
//!     b.set_op(0, Op::Generate(Pebble::new(i, 1)));
//!     b.end_step();
//! }
//! let proto = b.finish();
//! let trace = check(&guest, &host, &proto).expect("valid pebble protocol");
//! assert_eq!(trace.weight(0, 1), 1);          // q_{0,1}: one representative
//! assert_eq!(proto.inefficiency(), 2.0);      // k = T'·m/(T·n) = 3·2/3
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod check;
pub mod depgraph;
pub mod deptree;
pub mod fragment;
pub mod io;
pub mod optimize;
pub mod protocol;
pub mod replay;

pub use check::{check, check_recorded, CheckError, RepresentativeSet, Trace};
pub use protocol::{Op, Pebble, Protocol, ProtocolBuilder};

/// Helpers shared by tests across this crate (not part of the public API).
#[doc(hidden)]
pub mod test_support {
    use unet_topology::Graph;

    /// A path host 0–1–…–(k−1).
    pub fn path_host(k: usize) -> Graph {
        unet_topology::generators::path(k)
    }
}
