//! Asynchronous simulation schedules and the redundancy heatmap.
//!
//! The pebble-game model explicitly allows guest steps to be simulated
//! asynchronously (Section 1, improvement 1). This example runs the same
//! `U[G₀]` guest under three asynchronous scheduling policies plus the
//! synchronous Theorem 2.1 engine, compares their slowdowns (asynchrony
//! costs nothing — the work is the same, only the order changes), shows the
//! wavefront thresholds, and prints the `q_{i,t}` redundancy heatmap of the
//! synchronous run.
//!
//! Run with: `cargo run --release --example async_schedules`

use universal_networks::core::async_sim::{AsyncSimulator, SchedulePolicy};
use universal_networks::core::prelude::*;
use universal_networks::lowerbound::wavefront::{existence_times, tau_threshold};
use universal_networks::pebble::analysis::weight_heatmap;
use universal_networks::pebble::check;
use universal_networks::topology::generators::{complete, random_supergraph, torus};
use universal_networks::topology::util::seeded_rng;

fn main() {
    let mut rng = seeded_rng(8);
    let g0 = universal_networks::lowerbound::build_g0(64, 1, &mut rng);
    let guest = random_supergraph(&g0.graph, 12, &mut rng);
    let comp = GuestComputation::random(guest.clone(), 9);
    let steps = 6;
    let n = guest.n();

    println!("guest ∈ U[G0]: n = {n}, 12-regular; T = {steps}\n");
    println!("== asynchronous schedules on the complete host K8 ==");
    let host = complete(8);
    for (name, policy) in [
        ("random", SchedulePolicy::Random),
        ("breadth-first", SchedulePolicy::LowestLevel),
        ("depth-first", SchedulePolicy::DeepestFirst),
    ] {
        let sim = AsyncSimulator { embedding: Embedding::block(n, 8), policy };
        let run = sim.simulate(&comp, &host, steps, &mut seeded_rng(10));
        let trace = check(&guest, &host, &run.protocol).expect("certifies");
        assert_eq!(run.final_states, comp.run_final(steps));
        let ex = existence_times(&trace);
        let taus: Vec<u32> = (1..=steps)
            .map(|t| tau_threshold(&ex, t, n / 2).unwrap())
            .collect();
        println!(
            "{name:>14}: T' = {:>5}, slowdown {:>6.1}, τ_j(αn) = {taus:?}",
            trace.host_steps,
            run.slowdown()
        );
    }

    println!("\n== synchronous Theorem 2.1 engine on torus(4,4), redundancy heatmap ==");
    let host = torus(4, 4);
    let router = presets::torus_xy(4, 4);
    let sim = EmbeddingSimulator { embedding: Embedding::block(n, 16), router: &router };
    let run = sim.simulate(&comp, &host, steps, &mut seeded_rng(11));
    let trace = check(&guest, &host, &run.protocol).expect("certifies");
    println!(
        "T' = {}, slowdown {:.1}, k = {:.2}",
        trace.host_steps,
        run.slowdown(),
        run.inefficiency()
    );
    println!("\nq_(i,t) heatmap (rows = guest level, cols = guests, log2 scale):");
    print!("{}", weight_heatmap(&trace, n.min(64)));
    println!("\n(legend: '.' = 1 copy, digit d = up to 2^d holders — transit custody");
    println!("along routing paths is what inflates the profile; see pebble::optimize");
    println!("for the pruned, essential profile.)");
}
