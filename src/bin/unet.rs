//! `unet` — the command-line face of the universal-networks workspace.
//!
//! ```text
//! unet topo     <spec>                        graph facts (degree, diameter, expansion)
//! unet simulate <guest> <host> <T> [opts]     run + certify a universal simulation
//! unet check    <guest> <host> <proto-file>   re-check a saved protocol
//! unet route    <host> <h> [--trials N]       measure route_M(h)
//! unet tradeoff <n> [--gamma G]               print the Theorem 3.1 trade-off table
//! unet audit    <n-hint> <host> <T>           full lower-bound audit on a U[G0] guest
//! unet trace    <guest> <host> <T> [opts]     instrumented run → JSONL trace
//! unet trace    --quick [opts]                same, with stock quick-smoke parameters
//! unet report   <trace-file>                  human-readable trace summary
//! unet report   --markdown <BENCH.json>       markdown tables from a bench artifact
//! unet analyze  <trace-file> [opts]           streaming congestion/critical-path analysis
//! unet metrics  <trace-file | g h T>          Prometheus-style metrics exposition
//! unet faults   <guest> <host> <T> [opts]     degraded run under crash-stop faults
//! unet bench    run|diff|list [opts]          experiment registry + regression gate
//! unet serve    [opts]                        long-running simulation server (unet-serve/3)
//! unet shard    [opts]                        fingerprint-affine router over N backend servers
//! unet request  <addr> <kind> [args]          typed client for a running server
//! unet trace-requests <trace-file>...         per-request waterfalls, merged by trace_id
//! ```
//!
//! Graph specs: `torus:8x8`, `butterfly:4`, `random:256x4:7`, … (see
//! `universal_networks::spec`).

use std::process::ExitCode;
use universal_networks::core::prelude::*;
use universal_networks::core::routers::SelectorRouter;
use universal_networks::lowerbound;
use universal_networks::pebble;
use universal_networks::routing::metrics::measure_route_time_bfs;
use universal_networks::spec::parse_graph;
use universal_networks::topology::analysis::{diameter_exact, is_connected};
use universal_networks::topology::generators::random_supergraph;
use universal_networks::topology::spectral::certify_expander;
use universal_networks::topology::util::seeded_rng;
use universal_networks::topology::Graph;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  unet topo     <spec>
  unet simulate <guest-spec> <host-spec> <steps> [--seed S] [--save FILE]
                [--threads N] [--no-cache]
  unet check    <guest-spec> <host-spec> <protocol-file>
  unet route    <host-spec> <h> [--trials N]
  unet tradeoff <n> [--gamma G]
  unet audit    <n-hint> <host-spec> <steps>
  unet trace    <guest-spec> <host-spec> <steps> [--seed S] [--out FILE]
  unet trace    --quick [--seed S] [--out FILE]
  unet report   <trace-file>
  unet report   --markdown <BENCH.json>
  unet analyze  <trace-file> [--markdown] [--top K]
  unet metrics  <trace-file>
  unet metrics  <guest-spec> <host-spec> <steps> [--seed S]
  unet faults   <guest-spec> <host-spec> <steps> [--rate R] [--at T0] [--seed S] [--out FILE]
  unet bench    run  [--quick] [--filter IDS] [--out FILE] [--resume] [--threads N]
  unet bench    diff <baseline-BENCH.json> [--full] [--filter IDS] [--threads N]
  unet bench    list
  unet serve    [--addr A] [--workers N] [--queue N] [--deadline-ms MS]
                [--max-batch N] [--linger-ms MS] [--sample-permille P]
                [--trace-out FILE]
  unet shard    (--shards N | --backend ADDR ...) [--addr A] [--workers N]
                [--queue N] [--backend-workers N] [--backend-conns N]
                [--probe-ms MS] [--eject-after N] [--sample-permille P]
                [--trace-out FILE] [--backend-trace-dir DIR]
  unet request  <addr> simulate <guest-spec> <host-spec> <steps>
                [--seed S] [--deadline-ms MS] [--retries N] [--raw]
  unet request  <addr> batch <guest,host,steps[,seed]>...
                [--deadline-ms MS] [--retries N] [--raw]
  unet request  <addr> analyze <trace-file> [--raw]
  unet request  <addr> metrics [--raw]
  unet trace-requests <trace-file>... [--trace ID]... [--markdown]";

fn run(args: &[String]) -> Result<(), String> {
    let cmd = args.first().ok_or("missing subcommand")?;
    match cmd.as_str() {
        "topo" => topo(args.get(1).ok_or("missing spec")?),
        "simulate" | "sim" => simulate(&args[1..]),
        "check" => check_cmd(&args[1..]),
        "route" => route_cmd(&args[1..]),
        "tradeoff" => tradeoff(&args[1..]),
        "audit" => audit(&args[1..]),
        "trace" => trace_cmd(&args[1..]),
        "report" => report_cmd(&args[1..]),
        "analyze" => analyze_cmd(&args[1..]),
        "metrics" => metrics_cmd(&args[1..]),
        "faults" => faults_cmd(&args[1..]),
        "bench" => bench_cmd(&args[1..]),
        "serve" => serve_cmd(&args[1..]),
        "shard" => shard_cmd(&args[1..]),
        "request" => request_cmd(&args[1..]),
        "trace-requests" => trace_requests_cmd(&args[1..]),
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

/// Every value of a repeatable flag (`--backend a --backend b` → `[a, b]`).
fn flag_values(args: &[String], name: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == name {
            if let Some(v) = it.next() {
                out.push(v.clone());
            }
        }
    }
    out
}

/// Positional arguments: everything that is not a flag or the value of one
/// of the listed value-taking flags.
fn positionals<'a>(args: &'a [String], value_flags: &[&str]) -> Vec<&'a String> {
    let mut out = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if value_flags.contains(&a.as_str()) {
            it.next();
        } else if !a.starts_with("--") {
            out.push(a);
        }
    }
    out
}

fn topo(spec: &str) -> Result<(), String> {
    let g = parse_graph(spec)?;
    println!("spec:       {spec}");
    println!("nodes:      {}", g.n());
    println!("edges:      {}", g.num_edges());
    println!("degree:     {}..{}", g.min_degree(), g.max_degree());
    println!("regular:    {:?}", g.is_regular());
    println!("connected:  {}", is_connected(&g));
    if g.n() <= 4096 && is_connected(&g) {
        println!("diameter:   {}", diameter_exact(&g));
    }
    if let Some(d) = g.is_regular() {
        if d >= 3 && g.n() >= 8 {
            let mut rng = seeded_rng(1);
            match certify_expander(&g, 0.5, 400, &mut rng) {
                Some((a, b, gm)) => println!("expander:   certified (α={a}, β={b:.3}, γ={gm:.4})"),
                None => println!("expander:   not certified at α=0.5"),
            }
        }
    }
    Ok(())
}

fn simulate(args: &[String]) -> Result<(), String> {
    use universal_networks::obs::InMemoryRecorder;
    use universal_networks::topology::par::default_threads;

    let guest_spec = args.first().ok_or("missing guest spec")?;
    let host_spec = args.get(1).ok_or("missing host spec")?;
    let steps: u32 = args.get(2).ok_or("missing steps")?.parse().map_err(|_| "bad steps")?;
    let seed: u64 = flag(args, "--seed").map_or(Ok(0), |s| s.parse().map_err(|_| "bad seed"))?;
    let threads: usize = flag(args, "--threads")
        .map_or(Ok(default_threads()), |s| s.parse().map_err(|_| "bad threads"))?;
    let cache =
        if has_flag(args, "--no-cache") { CachePolicy::Disabled } else { CachePolicy::Enabled };
    let guest = parse_graph(guest_spec)?;
    let host = parse_graph(host_spec)?;
    let (n, m) = (guest.n(), host.n());
    let comp = GuestComputation::random(guest.clone(), seed);
    let router: SelectorRouter<universal_networks::routing::ShortestPath> = presets::bfs();
    let mut rec = InMemoryRecorder::new();
    let run = Simulation::builder()
        .guest(&comp)
        .host(&host)
        .embedding(Embedding::block(n, m))
        .router(&router)
        .steps(steps)
        .seed(seed ^ 0xAA)
        .threads(threads)
        .cache_policy(cache)
        .recorder(&mut rec)
        .run()
        .map_err(|e| e.to_string())?;
    let v = run.verify(&comp, &host, steps).map_err(|e| e.to_string())?;
    println!("guest {guest_spec} (n={n})  →  host {host_spec} (m={m}),  T = {steps}");
    println!("host steps T' = {}", v.metrics.host_steps);
    println!(
        "slowdown  s  = {:.2}   (load bound {:.2})",
        v.metrics.slowdown,
        bounds::load_bound(n, m)
    );
    println!(
        "inefficy  k  = {:.2}   (Thm 3.1 floor Ω(log m) ~ {:.2})",
        v.metrics.inefficiency,
        (m as f64).log2()
    );
    println!(
        "route-plan cache: {} hits / {} misses   ({} threads)",
        rec.counter_value("sim.cache.hits"),
        rec.counter_value("sim.cache.misses"),
        threads
    );
    println!("protocol certified; states match direct execution bit-for-bit");
    if let Some(path) = flag(args, "--save") {
        std::fs::write(&path, pebble::io::to_text(&run.protocol))
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("protocol saved to {path}");
    }
    Ok(())
}

fn check_cmd(args: &[String]) -> Result<(), String> {
    let guest = parse_graph(args.first().ok_or("missing guest spec")?)?;
    let host = parse_graph(args.get(1).ok_or("missing host spec")?)?;
    let path = args.get(2).ok_or("missing protocol file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let proto = pebble::io::from_text(&text).map_err(|e| e.to_string())?;
    match pebble::check(&guest, &host, &proto) {
        Ok(trace) => {
            println!(
                "OK: valid protocol ({} steps, {} busy ops, slowdown {:.2}, inefficiency {:.2})",
                trace.host_steps,
                proto.busy_ops(),
                proto.slowdown(),
                proto.inefficiency()
            );
            Ok(())
        }
        Err(e) => Err(format!("INVALID protocol: {e}")),
    }
}

fn route_cmd(args: &[String]) -> Result<(), String> {
    let host = parse_graph(args.first().ok_or("missing host spec")?)?;
    let h: usize = args.get(1).ok_or("missing h")?.parse().map_err(|_| "bad h")?;
    let trials: usize =
        flag(args, "--trials").map_or(Ok(5), |s| s.parse().map_err(|_| "bad trials"))?;
    let mut rng = seeded_rng(7);
    let stats = measure_route_time_bfs(&host, h, trials, &mut rng);
    println!(
        "route_M({h}) over {trials} random problems on m = {}: max {} steps, mean {:.1}, max queue {}",
        host.n(),
        stats.max_steps,
        stats.mean_steps,
        stats.max_queue
    );
    Ok(())
}

/// Run an instrumented simulation (same setup as `simulate`) and emit the
/// JSONL trace: simulator phase spans, routing metrics, the pebble-checker
/// custody stats, and the slowdown/inefficiency summary.
fn trace_cmd(args: &[String]) -> Result<(), String> {
    use universal_networks::obs::trace::{export, RunMeta, RunSummary};
    use universal_networks::obs::InMemoryRecorder;
    use universal_networks::pebble::check_recorded;

    // `--quick` is the CI-smoke shorthand: a stock small run whose trace
    // exercises every record type (spans, samples, histograms, summary).
    let (guest_spec, host_spec, steps): (String, String, u32) = if has_flag(args, "--quick") {
        ("ring:24".into(), "torus:3x3".into(), 4)
    } else {
        (
            args.first().ok_or("missing guest spec (or use --quick)")?.clone(),
            args.get(1).ok_or("missing host spec")?.clone(),
            args.get(2).ok_or("missing steps")?.parse().map_err(|_| "bad steps")?,
        )
    };
    let seed: u64 = flag(args, "--seed").map_or(Ok(0), |s| s.parse().map_err(|_| "bad seed"))?;
    let guest = parse_graph(&guest_spec)?;
    let host = parse_graph(&host_spec)?;
    let (n, m) = (guest.n(), host.n());
    let comp = GuestComputation::random(guest.clone(), seed);
    let router: SelectorRouter<universal_networks::routing::ShortestPath> = presets::bfs();

    let mut rec = InMemoryRecorder::new();
    let wall_start = std::time::Instant::now();
    let run = Simulation::builder()
        .guest(&comp)
        .host(&host)
        .embedding(Embedding::block(n, m))
        .router(&router)
        .steps(steps)
        .seed(seed ^ 0xAA)
        .recorder(&mut rec)
        .run()
        .map_err(|e| e.to_string())?;
    check_recorded(&guest, &host, &run.protocol, &mut rec)
        .map_err(|e| format!("emitted protocol failed to verify: {e}"))?;
    let wall_ms = wall_start.elapsed().as_secs_f64() * 1e3;

    let meta = RunMeta {
        command: "trace".into(),
        guest: guest_spec.clone(),
        host: host_spec.clone(),
        n: n as u64,
        m: m as u64,
        guest_steps: steps as u64,
    };
    let summary = RunSummary {
        host_steps: run.protocol.host_steps() as u64,
        comm_steps: run.comm_steps as u64,
        compute_steps: run.compute_steps as u64,
        slowdown: run.slowdown(),
        inefficiency: run.inefficiency(),
        wall_ms,
    };
    let text = export(&rec, &meta, Some(&summary));
    match flag(args, "--out") {
        Some(path) => {
            std::fs::write(&path, &text).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!(
                "trace written to {path} ({} lines, T' = {}, s = {:.2}, k = {:.2})",
                text.lines().count(),
                summary.host_steps,
                summary.slowdown,
                summary.inefficiency
            );
        }
        None => print!("{text}"),
    }
    Ok(())
}

/// Run a degraded simulation under seeded crash-stop faults, certify it,
/// verify bit-for-bit reproduction, and print (or trace) the fault story.
fn faults_cmd(args: &[String]) -> Result<(), String> {
    use universal_networks::faults::{DegradedSimulator, FaultPlan};
    use universal_networks::obs::trace::{export_with_faults, RunMeta, RunSummary};
    use universal_networks::obs::InMemoryRecorder;
    use universal_networks::routing::ShortestPath;

    let guest_spec = args.first().ok_or("missing guest spec")?;
    let host_spec = args.get(1).ok_or("missing host spec")?;
    let steps: u32 = args.get(2).ok_or("missing steps")?.parse().map_err(|_| "bad steps")?;
    let rate: f64 = flag(args, "--rate").map_or(Ok(0.1), |s| s.parse().map_err(|_| "bad rate"))?;
    let at: u32 = flag(args, "--at").map_or(Ok(2), |s| s.parse().map_err(|_| "bad at"))?;
    let seed: u64 = flag(args, "--seed").map_or(Ok(0), |s| s.parse().map_err(|_| "bad seed"))?;
    let guest = parse_graph(guest_spec)?;
    let host = parse_graph(host_spec)?;
    let (n, m) = (guest.n(), host.n());
    let comp = GuestComputation::random(guest.clone(), seed);
    let sim = DegradedSimulator {
        embedding: Embedding::block(n, m),
        plan: FaultPlan::crashes(&host, rate, at, seed ^ 0xF417),
        selector: Some(ShortestPath),
    };
    let mut rng = seeded_rng(seed ^ 0xAA);
    let mut rec = InMemoryRecorder::new();
    let wall_start = std::time::Instant::now();
    let run = sim
        .simulate_recorded(&comp, &host, steps, &mut rng, &mut rec)
        .map_err(|e| e.to_string())?;
    pebble::check(&guest, &host, &run.run.protocol)
        .map_err(|e| format!("degraded protocol failed to verify: {e}"))?;
    if run.run.final_states != comp.run_final(steps) {
        return Err("degraded run diverged from direct guest execution".into());
    }
    let wall_ms = wall_start.elapsed().as_secs_f64() * 1e3;

    println!("guest {guest_spec} (n={n})  →  host {host_spec} (m={m}),  T = {steps}");
    println!("fault plan: crash-stop rate {rate} at boundary {at} ({} events)", sim.plan.len());
    println!("surviving  m' = {} / {m}", run.m_surviving);
    println!("host steps T' = {}", run.run.protocol.host_steps());
    println!("slowdown   s  = {:.2}", run.run.slowdown());
    println!(
        "inefficy   k' = {:.2} on m'   (Thm 3.1 floor Ω(log m') ~ {:.2})",
        run.surviving_inefficiency(),
        (run.m_surviving as f64).log2()
    );
    println!(
        "routing: delivered {}, dropped {}, retried {};  remapped {}, replayed {}",
        run.delivered, run.dropped, run.retried, run.remapped, run.replayed
    );
    println!("protocol certified; states match direct execution bit-for-bit");
    if let Some(path) = flag(args, "--out") {
        let meta = RunMeta {
            command: "faults".into(),
            guest: guest_spec.clone(),
            host: host_spec.clone(),
            n: n as u64,
            m: m as u64,
            guest_steps: steps as u64,
        };
        let summary = RunSummary {
            host_steps: run.run.protocol.host_steps() as u64,
            comm_steps: run.run.comm_steps as u64,
            compute_steps: run.run.compute_steps as u64,
            slowdown: run.run.slowdown(),
            inefficiency: run.surviving_inefficiency(),
            wall_ms,
        };
        let text = export_with_faults(&rec, &meta, &run.fault_log, Some(&summary));
        std::fs::write(&path, &text).map_err(|e| format!("writing {path}: {e}"))?;
        println!("trace with fault timeline written to {path} ({} lines)", text.lines().count());
    }
    Ok(())
}

/// Parse, validate, and summarize a JSONL trace written by `unet trace`,
/// or — with `--markdown` — render a `BENCH.json` artifact as the markdown
/// tables EXPERIMENTS.md embeds.
fn report_cmd(args: &[String]) -> Result<(), String> {
    use universal_networks::obs::{report, trace::parse_trace};
    if has_flag(args, "--markdown") {
        let path = args
            .iter()
            .find(|a| !a.starts_with("--"))
            .ok_or("missing BENCH.json path after --markdown")?;
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let doc = universal_networks::bench::schema::BenchDoc::parse(&text)
            .map_err(|e| format!("{path}: {e}"))?;
        print!("{}", universal_networks::bench::report_md::render(&doc));
        return Ok(());
    }
    let path = args.first().ok_or("missing trace file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let doc = parse_trace(&text)?;
    print!("{}", report::render(&doc));
    Ok(())
}

/// `{path}: line N: {err}` — the one line-number formatting every
/// malformed-JSONL exit path shares (`analyze`, `metrics`, and the
/// `request analyze` file reader).
fn trace_line_err(path: &str, lno: usize, err: impl std::fmt::Display) -> String {
    format!("{path}: line {lno}: {err}")
}

/// Stream a JSONL trace file through the bounded-memory analyzer. The
/// trace is read line by line — a multi-million-event trace is never
/// materialized in memory — and malformed or truncated input is a hard
/// error naming the offending line via [`trace_line_err`].
fn analyze_file(path: &str) -> Result<universal_networks::obs::analysis::Analysis, String> {
    use std::io::{BufRead, BufReader};
    use universal_networks::obs::analysis::TraceAnalyzer;
    let file = std::fs::File::open(path).map_err(|e| format!("reading {path}: {e}"))?;
    let mut analyzer = TraceAnalyzer::new();
    for (i, line) in BufReader::new(file).lines().enumerate() {
        let line = line.map_err(|e| trace_line_err(path, i + 1, e))?;
        analyzer.feed_line(&line, i + 1).map_err(|e| format!("{path}: {e}"))?;
    }
    analyzer.finish().map_err(|e| format!("{path}: {e}"))
}

/// Stream a JSONL trace through the bounded-memory analyzer and print the
/// congestion / critical-path report (human by default, `--markdown` for
/// GFM).
fn analyze_cmd(args: &[String]) -> Result<(), String> {
    use universal_networks::obs::analysis::render;

    let pos = positionals(args, &["--top"]);
    let path = pos.first().ok_or("missing trace file")?;
    let top: usize = flag(args, "--top").map_or(Ok(5), |s| s.parse().map_err(|_| "bad --top"))?;
    let analysis = analyze_file(path)?;
    print!("{}", render(&analysis, top, has_flag(args, "--markdown")));
    Ok(())
}

/// Print the unified metrics registry in Prometheus text exposition
/// format. Two sources: a trace file (one positional argument) streams
/// through the analyzer; a `<guest> <host> <steps>` triple runs a fresh
/// instrumented simulation through `Simulation::builder()` and exposes the
/// live recorder.
fn metrics_cmd(args: &[String]) -> Result<(), String> {
    use universal_networks::obs::{InMemoryRecorder, MetricsRegistry};

    let pos = positionals(args, &["--seed"]);
    let reg = match pos.as_slice() {
        [path] => MetricsRegistry::from_analysis(&analyze_file(path)?),
        [guest_spec, host_spec, steps] => {
            let steps: u32 = steps.parse().map_err(|_| "bad steps")?;
            let seed: u64 =
                flag(args, "--seed").map_or(Ok(0), |s| s.parse().map_err(|_| "bad seed"))?;
            let guest = parse_graph(guest_spec)?;
            let host = parse_graph(host_spec)?;
            let (n, m) = (guest.n(), host.n());
            let comp = GuestComputation::random(guest, seed);
            let router: SelectorRouter<universal_networks::routing::ShortestPath> = presets::bfs();
            let mut rec = InMemoryRecorder::new();
            Simulation::builder()
                .guest(&comp)
                .host(&host)
                .embedding(Embedding::block(n, m))
                .router(&router)
                .steps(steps)
                .seed(seed ^ 0xAA)
                .recorder(&mut rec)
                .run()
                .map_err(|e| e.to_string())?;
            MetricsRegistry::from_recorder(&rec)
        }
        _ => return Err("expected a trace file or <guest-spec> <host-spec> <steps>".into()),
    };
    print!("{}", reg.expose());
    Ok(())
}

/// The experiment registry: `run` sweeps grids into a versioned
/// `BENCH.json`, `diff` re-checks every paper claim's *shape* (Thm 2.1
/// affinity in log m, the Thm 3.1 floor, E17's bit-for-bit invariants)
/// against a committed baseline plus a fresh run, `list` shows what is
/// registered.
fn bench_cmd(args: &[String]) -> Result<(), String> {
    use universal_networks::bench::diff::diff;
    use universal_networks::bench::registry::registry;
    use universal_networks::bench::sweep::{check_shapes, run_to_file, SweepOptions};
    use universal_networks::topology::par::default_threads;

    let sub = args.first().ok_or("missing bench subcommand (run | diff | list)")?;
    let threads: usize = flag(args, "--threads")
        .map_or(Ok(default_threads()), |s| s.parse().map_err(|_| "bad threads"))?;
    let filter = flag(args, "--filter").map(|f| SweepOptions::parse_filter(&f));
    match sub.as_str() {
        "list" => {
            for exp in registry() {
                println!("{}: {}", exp.id, exp.title);
                println!("    claim: {}", exp.claim);
                for shape in (exp.shapes)() {
                    println!("    shape: {}", shape.describe());
                }
            }
            Ok(())
        }
        "run" => {
            let opts = SweepOptions { quick: has_flag(args, "--quick"), filter, threads };
            let out = flag(args, "--out").unwrap_or_else(|| "BENCH.json".into());
            let (doc, progress) = run_to_file(&out, &opts, has_flag(args, "--resume"))?;
            for line in &progress {
                println!("{line}");
            }
            println!("wrote {out} ({} experiments)", doc.experiments.len());
            let mut bent = Vec::new();
            for o in check_shapes(&doc) {
                match o.violation {
                    None => println!("  ok    {} {}", o.exp, o.shape),
                    Some(v) => bent.push(format!("  FAIL  {} {v}", o.exp)),
                }
            }
            for line in &bent {
                println!("{line}");
            }
            if bent.is_empty() {
                Ok(())
            } else {
                Err(format!("{} shape predicate(s) violated by the fresh sweep", bent.len()))
            }
        }
        "diff" => {
            // First positional after `diff`, skipping flags and their values.
            let mut rest = args.iter().skip(1);
            let mut path = None;
            while let Some(a) = rest.next() {
                if a == "--filter" || a == "--threads" {
                    rest.next();
                } else if !a.starts_with("--") {
                    path = Some(a);
                    break;
                }
            }
            let path = path.ok_or("missing baseline BENCH.json path")?;
            let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            // Quick grids by default: the gate checks shapes, not absolute
            // numbers, so the CI-smoke sizes are comparable to a committed
            // full-size baseline. `--full` opts into full grids.
            let opts = SweepOptions { quick: !has_flag(args, "--full"), filter, threads };
            let report = diff(&text, &opts)?;
            for line in &report.lines {
                println!("{line}");
            }
            if report.passed() {
                println!("bench diff: all claim shapes hold");
                Ok(())
            } else {
                Err(format!("bench diff: {} shape check(s) failed", report.failures))
            }
        }
        other => Err(format!("unknown bench subcommand {other:?} (run | diff | list)")),
    }
}

/// Run the long-running simulation server (`unet-serve/3`). Prints the
/// bound address on stdout and then blocks; SIGTERM or stdin reaching EOF
/// triggers a graceful drain — stop accepting, answer everything in
/// flight, then print the final Prometheus exposition on stdout and a
/// one-line stats summary on stderr. `--trace-out FILE` additionally
/// writes the tail-sampled per-request trace (`unet trace-requests`
/// reads it back).
fn serve_cmd(args: &[String]) -> Result<(), String> {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use universal_networks::serve::{signal, ServeConfig, Server};

    let defaults = ServeConfig::default();
    let cfg = ServeConfig {
        addr: flag(args, "--addr").unwrap_or(defaults.addr),
        workers: flag(args, "--workers")
            .map_or(Ok(defaults.workers), |s| s.parse().map_err(|_| "bad --workers"))?,
        queue_cap: flag(args, "--queue")
            .map_or(Ok(defaults.queue_cap), |s| s.parse().map_err(|_| "bad --queue"))?,
        default_deadline_ms: flag(args, "--deadline-ms")
            .map_or(Ok(defaults.default_deadline_ms), |s| {
                s.parse().map_err(|_| "bad --deadline-ms")
            })?,
        max_batch: flag(args, "--max-batch")
            .map_or(Ok(defaults.max_batch), |s| s.parse().map_err(|_| "bad --max-batch"))?,
        linger_ms: flag(args, "--linger-ms")
            .map_or(Ok(defaults.linger_ms), |s| s.parse().map_err(|_| "bad --linger-ms"))?,
        head_sample_permille: flag(args, "--sample-permille")
            .map_or(Ok(defaults.head_sample_permille), |s| {
                s.parse().map_err(|_| "bad --sample-permille")
            })?,
        conn_workers: defaults.conn_workers,
    };
    let server = Server::start(cfg).map_err(|e| format!("bind: {e}"))?;
    println!("unet-serve/3 listening on {}", server.addr());
    {
        use std::io::Write;
        std::io::stdout().flush().ok();
    }

    let term = signal::install_sigterm_flag();
    let stdin_closed = Arc::new(AtomicBool::new(false));
    {
        let stdin_closed = Arc::clone(&stdin_closed);
        std::thread::spawn(move || {
            // Block until stdin reaches EOF (pipe closed, ctrl-d); any
            // content arriving before that is ignored.
            use std::io::Read;
            let mut sink = [0u8; 4096];
            let mut stdin = std::io::stdin();
            while matches!(stdin.read(&mut sink), Ok(n) if n > 0) {}
            stdin_closed.store(true, Ordering::SeqCst);
        });
    }
    while !term.load(Ordering::SeqCst) && !stdin_closed.load(Ordering::SeqCst) {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }

    let report = server.drain();
    eprintln!(
        "drained: {} conns admitted, {} rejected, {} requests completed, cache hit ratio {}",
        report.stats.admitted,
        report.stats.rejected,
        report.stats.completed,
        report.stats.hit_ratio().map_or_else(|| "-".into(), |r| format!("{r:.3}")),
    );
    if let Some(path) = flag(args, "--trace-out") {
        std::fs::write(&path, &report.trace).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("request trace written to {path} ({} lines)", report.trace.lines().count());
    }
    print!("{}", report.exposition);
    Ok(())
}

/// `unet shard` — the fingerprint-affine front-end router. `--shards N`
/// spawns and supervises N backend `unet serve` child processes on
/// ephemeral ports (their graceful drain rides the child-stdin pipe);
/// `--backend ADDR` (repeatable) attaches externally managed ones. Prints
/// the bound address on stdout and blocks; SIGTERM, SIGINT, or stdin EOF
/// drains the router first (answer everything in flight), then the
/// spawned backends, then prints the router's final exposition.
fn shard_cmd(args: &[String]) -> Result<(), String> {
    use std::io::{BufRead, BufReader, Write};
    use std::process::{Child, Command, Stdio};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use universal_networks::serve::router::{Router, ShardConfig};
    use universal_networks::serve::signal;

    let defaults = ShardConfig::default();
    let spawn_n: usize =
        flag(args, "--shards").map_or(Ok(0), |s| s.parse().map_err(|_| "bad --shards"))?;
    let mut backends = flag_values(args, "--backend");
    if spawn_n > 0 && !backends.is_empty() {
        return Err("use either --shards (spawn) or --backend (attach), not both".into());
    }
    if spawn_n == 0 && backends.is_empty() {
        return Err("need --shards N (spawn backends) or --backend ADDR (attach)".into());
    }
    let backend_workers: usize = flag(args, "--backend-workers")
        .map_or(Ok(1), |s| s.parse().map_err(|_| "bad --backend-workers"))?;

    let mut children: Vec<Child> = Vec::new();
    if spawn_n > 0 {
        let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
        for i in 0..spawn_n {
            let mut spawn_args = vec![
                "serve".to_string(),
                "--addr".to_string(),
                "127.0.0.1:0".to_string(),
                "--workers".to_string(),
                backend_workers.to_string(),
            ];
            // With a trace dir, each backend writes its tail-sampled
            // request trace there at drain — `unet trace-requests` merges
            // them with the router's own `--trace-out` by trace_id.
            if let Some(dir) = flag(args, "--backend-trace-dir") {
                spawn_args.push("--trace-out".to_string());
                spawn_args.push(format!("{dir}/backend-{i}.jsonl"));
            }
            // Backends must share the router's head-sampling rate: the
            // per-trace-id coin is deterministic, so equal rates mean the
            // tiers keep the same requests and a merged waterfall is
            // never half-missing.
            if let Some(p) = flag(args, "--sample-permille") {
                spawn_args.push("--sample-permille".to_string());
                spawn_args.push(p);
            }
            let mut child = Command::new(&exe)
                .args(&spawn_args)
                .stdin(Stdio::piped())
                .stdout(Stdio::piped())
                .stderr(Stdio::null())
                .spawn()
                .map_err(|e| format!("spawn backend {i}: {e}"))?;
            let mut reader = BufReader::new(child.stdout.take().expect("stdout piped"));
            let mut banner = String::new();
            reader.read_line(&mut banner).map_err(|e| format!("backend {i} banner: {e}"))?;
            let addr = banner
                .trim()
                .rsplit(' ')
                .next()
                .filter(|a| a.contains(':'))
                .ok_or_else(|| format!("backend {i} printed no address: {banner:?}"))?
                .to_string();
            // Keep the child's stdout pipe drained (its final exposition
            // arrives there at drain time) so it can never fill and block.
            std::thread::spawn(move || {
                let mut sink = String::new();
                while matches!(reader.read_line(&mut sink), Ok(n) if n > 0) {
                    sink.clear();
                }
            });
            backends.push(addr);
            children.push(child);
        }
    }

    let cfg = ShardConfig {
        addr: flag(args, "--addr").unwrap_or(defaults.addr),
        workers: flag(args, "--workers")
            .map_or(Ok(defaults.workers), |s| s.parse().map_err(|_| "bad --workers"))?,
        queue_cap: flag(args, "--queue")
            .map_or(Ok(defaults.queue_cap), |s| s.parse().map_err(|_| "bad --queue"))?,
        backends,
        // Spawned backends have a known worker count, so match the
        // connection bound to it; attached backends default to the safe
        // single connection unless the operator says otherwise.
        backend_conns: flag(args, "--backend-conns").map_or(
            Ok(if spawn_n > 0 { backend_workers } else { defaults.backend_conns }),
            |s| s.parse().map_err(|_| "bad --backend-conns"),
        )?,
        probe_interval_ms: flag(args, "--probe-ms")
            .map_or(Ok(defaults.probe_interval_ms), |s| s.parse().map_err(|_| "bad --probe-ms"))?,
        eject_after: flag(args, "--eject-after")
            .map_or(Ok(defaults.eject_after), |s| s.parse().map_err(|_| "bad --eject-after"))?,
        max_backoff_ms: defaults.max_backoff_ms,
        head_sample_permille: flag(args, "--sample-permille")
            .map_or(Ok(defaults.head_sample_permille), |s| {
                s.parse().map_err(|_| "bad --sample-permille")
            })?,
    };
    let router = Router::start(cfg).map_err(|e| format!("bind: {e}"))?;
    println!("unet-shard listening on {} ({} backends)", router.addr(), router.stats().backends);
    std::io::stdout().flush().ok();

    let term = signal::install_sigterm_flag();
    let int = signal::install_sigint_flag();
    let stdin_closed = Arc::new(AtomicBool::new(false));
    {
        let stdin_closed = Arc::clone(&stdin_closed);
        std::thread::spawn(move || {
            use std::io::Read;
            let mut sink = [0u8; 4096];
            let mut stdin = std::io::stdin();
            while matches!(stdin.read(&mut sink), Ok(n) if n > 0) {}
            stdin_closed.store(true, Ordering::SeqCst);
        });
    }
    while !term.load(Ordering::SeqCst)
        && !int.load(Ordering::SeqCst)
        && !stdin_closed.load(Ordering::SeqCst)
    {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }

    let report = router.drain();
    eprintln!(
        "drained: {} forwarded, {} completed, {} failovers, {} overloads absorbed, \
         {}/{} backends healthy",
        report.stats.forwarded,
        report.stats.completed,
        report.stats.failovers,
        report.stats.overloads_absorbed,
        report.stats.healthy,
        report.stats.backends,
    );
    // Supervised children drain in turn: closing a child's stdin is its
    // graceful-drain trigger (same contract as running `unet serve` under
    // a pipe), then reap every exit status.
    for child in &mut children {
        drop(child.stdin.take());
    }
    for (i, mut child) in children.into_iter().enumerate() {
        match child.wait() {
            Ok(status) => eprintln!("backend {i} exited: {status}"),
            Err(e) => eprintln!("backend {i} wait failed: {e}"),
        }
    }
    if let Some(path) = flag(args, "--trace-out") {
        std::fs::write(&path, &report.trace).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("request trace written to {path} ({} lines)", report.trace.lines().count());
    }
    print!("{}", report.exposition);
    Ok(())
}

/// Parse one `guest,host,steps[,seed]` batch-item spec.
fn parse_batch_item(
    spec: &str,
    deadline_ms: Option<u64>,
) -> Result<universal_networks::serve::protocol::SimulateReq, String> {
    use universal_networks::serve::protocol::SimulateReq;
    let parts: Vec<&str> = spec.split(',').collect();
    match parts.as_slice() {
        [guest, host, steps] | [guest, host, steps, _] => Ok(SimulateReq {
            guest: guest.to_string(),
            host: host.to_string(),
            steps: steps.parse().map_err(|_| format!("bad steps in batch item {spec:?}"))?,
            seed: parts
                .get(3)
                .map_or(Ok(0), |s| s.parse().map_err(|_| format!("bad seed in {spec:?}")))?,
            deadline_ms,
            id: None,
        }),
        _ => Err(format!("bad batch item {spec:?} (want guest,host,steps[,seed])")),
    }
}

/// Typed client for a running `unet serve`: build a `unet-serve/3` request
/// line, send it over a [`Client`](universal_networks::serve::Client)
/// connection, render the response. `--raw` prints the raw JSON response
/// line verbatim and always exits 0 — even for `overloaded` — so scripts
/// can branch on `\"kind\"` themselves; without it, error and overloaded
/// responses map to a non-zero exit. `--retries N` re-sends after an
/// `overloaded` rejection, sleeping the server's `retry_after_ms` hint.
fn request_cmd(args: &[String]) -> Result<(), String> {
    use universal_networks::obs::json::Value;
    use universal_networks::serve::protocol::{
        analyze_request_line, batch_request_line, gen_trace_id, metrics_request_line,
        parse_response, simulate_request_line, SimulateReq,
    };
    use universal_networks::serve::{Client, ClientError, Response};

    let pos = positionals(args, &["--seed", "--deadline-ms", "--retries"]);
    let (addr, kind) = match pos.as_slice() {
        [addr, kind, ..] => (addr.as_str(), kind.as_str()),
        _ => return Err("usage: unet request <addr> simulate|batch|analyze|metrics [args]".into()),
    };
    let deadline_ms = flag(args, "--deadline-ms")
        .map(|s| s.parse::<u64>().map_err(|_| "bad --deadline-ms"))
        .transpose()?;
    let retries: u32 =
        flag(args, "--retries").map_or(Ok(0), |s| s.parse().map_err(|_| "bad --retries"))?;
    // The CLI is this request's first ingress: stamp the trace context
    // here so the router and backend record their spans under one id.
    let trace_id = gen_trace_id();
    let line = match (kind, &pos[2..]) {
        ("simulate", [guest, host, steps]) => {
            let steps: u32 = steps.parse().map_err(|_| "bad steps")?;
            let seed: u64 =
                flag(args, "--seed").map_or(Ok(0), |s| s.parse().map_err(|_| "bad seed"))?;
            simulate_request_line(
                &SimulateReq {
                    guest: (*guest).clone(),
                    host: (*host).clone(),
                    steps,
                    seed,
                    deadline_ms,
                    id: None,
                },
                Some(&trace_id),
            )
        }
        ("batch", items) if !items.is_empty() => {
            let specs: Vec<SimulateReq> =
                items.iter().map(|s| parse_batch_item(s, None)).collect::<Result<_, String>>()?;
            batch_request_line(&specs, deadline_ms, None, Some(&trace_id))
        }
        ("analyze", [path]) => {
            // Reuse the canonical `{path}: line N` formatting on read
            // errors so a broken trace file fails the same way here as in
            // `unet analyze`.
            use std::io::{BufRead, BufReader};
            let file = std::fs::File::open(path).map_err(|e| format!("reading {path}: {e}"))?;
            let mut lines = Vec::new();
            for (i, line) in BufReader::new(file).lines().enumerate() {
                lines.push(line.map_err(|e| trace_line_err(path, i + 1, e))?);
            }
            analyze_request_line(&lines, None, Some(&trace_id))
        }
        ("metrics", []) => metrics_request_line(None, Some(&trace_id)),
        _ => return Err(format!("bad arguments for request kind {kind:?} (see usage)")),
    };
    let mut client = match Client::connect(addr) {
        Ok(c) => c.retries(retries),
        Err(e) => return Err(format!("{addr}: {e}")),
    };
    let resp = client.request_raw(&line).map_err(|e| format!("{addr}: {e}"))?;
    if has_flag(args, "--raw") {
        println!("{resp}");
        return Ok(());
    }
    // Overloaded retries only make sense once we interpret the response;
    // re-send through the typed path when a budget was given.
    let mut parsed = parse_response(&resp).map_err(|e| format!("{addr}: bad response: {e}"))?;
    if retries > 0 {
        if let Response::Overloaded { .. } = parsed {
            parsed = match client.request_typed_line(&line) {
                Ok(v) => Response::Result(v),
                Err(ClientError::Server(e)) => {
                    Response::Error { code: e.code, message: e.message, id: None }
                }
                Err(ClientError::Overloaded { queue_cap, retry_after_ms }) => {
                    Response::Overloaded { queue_cap, retry_after_ms }
                }
                Err(e) => return Err(format!("{addr}: {e}")),
            };
        }
    }
    match parsed {
        Response::Result(v) => {
            // Exposition-bearing results (metrics, analyze) print the
            // Prometheus text; simulate results print the JSON payload.
            if let Some(expo) = v.get("exposition").and_then(Value::as_str) {
                print!("{expo}");
            } else {
                println!("{}", v.to_json());
            }
            Ok(())
        }
        Response::Error { code, message, .. } => Err(format!("{code}: {message}")),
        Response::Overloaded { queue_cap, retry_after_ms } => Err(format!(
            "server overloaded (queue cap {queue_cap}, retry after {} ms)",
            retry_after_ms.unwrap_or(0)
        )),
    }
}

/// `unet trace-requests` — merge the sampled per-request records of one or
/// more trace files (a router's `--trace-out` plus its backends', say) by
/// `trace_id` and print one waterfall per traced request: each tier's
/// end-to-end latency, outcome, sampling reason, and stage spans with
/// scaled bars (`--markdown` for GFM tables, `--trace ID` to filter).
fn trace_requests_cmd(args: &[String]) -> Result<(), String> {
    use universal_networks::obs::report::render_waterfalls;
    use universal_networks::obs::trace::parse_trace;

    let paths = positionals(args, &["--trace"]);
    if paths.is_empty() {
        return Err("missing trace file(s)".into());
    }
    let only = flag_values(args, "--trace");
    let mut sources = Vec::new();
    for path in paths {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let doc = parse_trace(&text).map_err(|e| format!("{path}: {e}"))?;
        sources.push((path.clone(), doc));
    }
    print!("{}", render_waterfalls(&sources, &only, has_flag(args, "--markdown")));
    Ok(())
}

fn tradeoff(args: &[String]) -> Result<(), String> {
    let n: u64 = args.first().ok_or("missing n")?.parse().map_err(|_| "bad n")?;
    let gamma: f64 =
        flag(args, "--gamma").map_or(Ok(0.125), |s| s.parse().map_err(|_| "bad gamma"))?;
    let max_exp = (n as f64).log2() as u32;
    let ms: Vec<u64> = (3..=max_exp).map(|e| 1u64 << e).collect();
    println!(
        "{:>8} {:>9} {:>9} {:>9} {:>9} {:>12}",
        "m", "k_ideal", "k_shape", "s_shape", "s_upper", "m*s"
    );
    for row in lowerbound::tradeoff_table(n, &ms, gamma, 4) {
        println!(
            "{:>8} {:>9.2} {:>9.2} {:>9.1} {:>9.1} {:>12.0}",
            row.m, row.k_ideal, row.k_shape, row.s_shape, row.s_upper, row.ms_product
        );
    }
    Ok(())
}

fn audit(args: &[String]) -> Result<(), String> {
    let n_hint: usize = args.first().ok_or("missing n-hint")?.parse().map_err(|_| "bad n")?;
    let host: Graph = parse_graph(args.get(1).ok_or("missing host spec")?)?;
    let steps: u32 = args.get(2).ok_or("missing steps")?.parse().map_err(|_| "bad steps")?;
    let mut rng = seeded_rng(3);
    let (g0, n) = lowerbound::build_g0_for_host(n_hint, host.n(), &mut rng);
    let c = (g0.graph.max_degree() + 2).div_ceil(2) * 2; // even c ≥ deg(G0)
    let guest = random_supergraph(&g0.graph, c.max(12), &mut rng);
    println!(
        "G0: n = {n}, a = {}, blocks = {}, certified (α, β, γ) = ({:.2}, {:.3}, {:.4})",
        g0.a,
        g0.h(),
        g0.alpha,
        g0.beta,
        g0.gamma
    );
    let steps = if steps < g0.min_steps() {
        println!(
            "note: raising T from {steps} to {} (the analysis needs T > tree depth; \
             the paper's T ≥ 2√(log m))",
            g0.min_steps()
        );
        g0.min_steps()
    } else {
        steps
    };
    let router = presets::bfs();
    let report = lowerbound::run_audit(
        &g0,
        &guest,
        &host,
        Embedding::block(n, host.n()),
        &router,
        steps,
        0.05,
        &mut seeded_rng(4),
    );
    println!(
        "metrics: T' = {}, s = {:.1}, k = {:.2}",
        report.metrics.host_steps, report.metrics.slowdown, report.metrics.inefficiency
    );
    println!(
        "averaging: |Z_S| = {} (ok: {}), bounds hold: {}",
        report.averaging.z_s.len(),
        report.averaging.z_s_large_enough,
        report.averaging.all_bounds_hold()
    );
    println!(
        "wavefront: monotone {}, expansion {}, min gap {:?}",
        report.wavefront.monotone, report.wavefront.expansion_ok, report.wavefront.min_gap
    );
    println!(
        "fragments: structural {}, small-D fraction {:.3}",
        report.fragments_structurally_valid, report.small_d_fraction
    );
    println!("AUDIT {}", if report.passed() { "PASSED" } else { "FAILED" });
    report.passed().then_some(()).ok_or_else(|| "audit failed".into())
}
