//! E11 — simulating the complete network (the [14] setting, quoted in
//! Sections 1–2).
//!
//! Theorem 2.1 "is also true if the complete network is simulated", with
//! *online* routing (the `h–h` relations are data-dependent). The complete
//! guest `K_n` has degree `n−1`, so the induced problem has `h ≈ n²/m` —
//! routing volume, not latency, dominates, and the measured slowdown grows
//! like `n²/m · stretch` instead of `(n/m)·log m`. [14] also shows
//! `s = Ω(log n)` for non-oblivious complete-network simulation regardless
//! of `m` — our measured points must (and do) sit far above `log n`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use unet_core::prelude::*;
use unet_topology::generators::{complete, torus};

fn measure(n: usize, side: usize, steps: u32) -> (f64, f64) {
    let guest = complete(n);
    let comp = GuestComputation::random(guest.clone(), 0xE11);
    let host = torus(side, side);
    let router = presets::torus_xy(side, side);
    let run = Simulation::builder()
        .guest(&comp)
        .host(&host)
        .embedding(Embedding::block(n, side * side))
        .router(&router)
        .steps(steps)
        .seed(0xE11)
        .run()
        .expect("torus configuration is valid");
    let v = verify_run(&comp, &host, &run, steps).expect("certifies");
    (v.metrics.slowdown, v.metrics.inefficiency)
}

fn regenerate_table() {
    println!("\n=== E11: complete-network guests K_n on torus hosts ===");
    println!(
        "{:>5} {:>5} {:>10} {:>8} {:>10} {:>12}",
        "n", "m", "slowdown", "k", "log n", "n²/m (vol.)"
    );
    for (n, side) in [(32usize, 4usize), (64, 4), (64, 8), (128, 8)] {
        let (s, k) = measure(n, side, 2);
        let m = side * side;
        println!(
            "{n:>5} {m:>5} {s:>10.1} {k:>8.1} {:>10.1} {:>12.0}",
            (n as f64).log2(),
            (n * n) as f64 / m as f64
        );
    }
    println!("slowdown tracks the n²/m volume bound (complete guests are communication-");
    println!("bound), and sits far above the [14] floor s = Ω(log n) — consistent.");
}

fn bench(c: &mut Criterion) {
    regenerate_table();
    let mut group = c.benchmark_group("e11_complete");
    group.sample_size(10);
    for n in [32usize, 64] {
        group.bench_with_input(BenchmarkId::new("simulate_k_n", n), &n, |b, &n| {
            b.iter(|| measure(n, 4, 1));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
