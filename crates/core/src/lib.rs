//! # unet-core — universal network simulations
//!
//! The paper's subject as a usable system: simulate any constant-degree
//! guest network on any host network, with a machine-checked pebble-game
//! protocol and measured slowdown, for every simulation strategy the paper
//! discusses:
//!
//! * [`sim`] — the **public front door**: `Simulation::builder()`, fallible
//!   via [`SimError`], with thread/cache execution knobs;
//! * [`simulate`] — the **Theorem 2.1 engine**: static embedding +
//!   pluggable `h–h` routing; slowdown `O(route_M(n/m))`, with a
//!   step-invariant route-plan cache and parallel phases;
//! * [`galil_paul`] — the sorting-based universal machine of Galil & Paul;
//! * [`flooding`] — the fully redundant baseline (slowdown `n`);
//! * [`treesim`] — constant slowdown for short computations on
//!   `2^{O(T)}·n`-size tree hosts (the Section 1 remark);
//! * [`guest`] / [`embedding`] / [`routers`] — the moving parts;
//! * [`cache`] / [`cancel`] — cross-run route-plan sharing and
//!   cooperative cancellation, the substrate of long-lived servers
//!   (`unet-serve`);
//! * [`spec`] — textual `family:params` graph specifications;
//! * [`bounds`] — closed-form upper/lower bound shapes of the trade-off;
//! * [`verify`] — end-to-end certification (protocol validity + bit-exact
//!   states).
//!
//! ```
//! use unet_core::prelude::*;
//! use unet_topology::generators::{ring, torus};
//!
//! // Simulate a 16-node ring guest on a 4-node torus host (m ≤ n).
//! let guest = ring(16);
//! let host = torus(2, 2);
//! let comp = GuestComputation::random(guest, 7);
//! let router = presets::bfs();
//! let run = Simulation::builder()
//!     .guest(&comp)
//!     .host(&host)
//!     .embedding(Embedding::block(16, 4))
//!     .router(&router)
//!     .steps(3)
//!     .seed(1)
//!     .run()
//!     .expect("misconfigurations surface as SimError, not panics");
//! let verified = run.verify(&comp, &host, 3).expect("certified");
//! assert!(verified.metrics.slowdown >= 4.0); // ≥ load n/m
//! ```

#![deny(missing_docs)]

pub mod async_sim;
pub mod bounds;
pub mod cache;
pub mod cancel;
pub mod embedding;
pub mod error;
pub mod flooding;
pub mod galil_paul;
pub mod guest;
pub mod routers;
pub mod sim;
pub mod simulate;
pub mod spec;
pub mod treesim;
pub mod verify;

pub use cache::{workload_fingerprint, SharedPlanCache};
pub use cancel::CancelToken;
pub use embedding::Embedding;
pub use error::SimError;
pub use guest::GuestComputation;
pub use routers::Router;
pub use sim::{CachePolicy, Simulation, SimulationBuilder};
pub use simulate::SimulationRun;
pub use verify::{verify_run, VerifiedRun, VerifyError};

/// Glob-import surface.
pub mod prelude {
    pub use crate::bounds;
    pub use crate::cache::SharedPlanCache;
    pub use crate::cancel::CancelToken;
    pub use crate::embedding::Embedding;
    pub use crate::error::SimError;
    pub use crate::guest::GuestComputation;
    pub use crate::routers::{presets, Router};
    pub use crate::sim::{CachePolicy, Simulation, SimulationBuilder};
    pub use crate::simulate::SimulationRun;
    pub use crate::verify::{verify_run, VerifiedRun};
}
