//! Fragments of simulation protocols (Definition 3.2) and the multiplicity
//! bound (Lemma 3.3).
//!
//! A fragment `(B, B', D)` freezes, at one critical guest step `t₀`, the
//! representative sets `B_i = Q_S(i, t₀)`, one generator `b_i ∈ Q'_S(i, t₀)`
//! per guest node, and the derived sets `D_i = {i' | b_i ∈ B_{i'}}`. The
//! counting argument hinges on: the guest's edges at `P_i` must point into
//! `D_i` (because `b_i` had to hold all neighbour pebbles to generate), so a
//! fragment pins the guest down to `∏ C(|D_i|, c/2)` candidates.

use crate::check::Trace;
use unet_topology::util::FxHashSet;
use unet_topology::{Graph, Node};

/// A fragment `(B, B', D)` consistent with a simulation at critical step
/// `t₀` (Definition 3.2).
#[derive(Debug, Clone)]
pub struct Fragment {
    /// The critical guest time step `t₀`.
    pub t0: u32,
    /// `B_i = Q_S(i, t₀)` — representatives of `P_i` at `t₀`.
    pub b: Vec<Vec<Node>>,
    /// `b_i ∈ Q'_S(i, t₀)` — the chosen generator of `(P_i, t₀+1)`.
    pub b_prime: Vec<Node>,
    /// `D_i = {i' ∈ [n] | b_i ∈ B_{i'}}` — guests co-located with the
    /// generator (derived, stored for convenience as in the paper).
    pub d: Vec<Vec<Node>>,
}

/// How to pick `b_i` from `Q'_S(i, t₀)` when several hosts generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GeneratorChoice {
    /// The first generator in execution order.
    #[default]
    First,
    /// The generator `j` minimizing `|P(j, t₀)|` — the choice Lemma 3.15
    /// makes implicitly when it argues about non-heavy pebbles.
    LightestHost,
}

/// Extract the fragment of `trace` at critical step `t0` (`0 ≤ t0 < T`).
/// Returns `None` if some `Q'_S(i, t0)` is empty, which cannot happen for a
/// valid full simulation (every `(P_i, t0+1)` must eventually be generated)
/// but can for truncated traces.
pub fn extract_fragment(trace: &Trace, t0: u32, choice: GeneratorChoice) -> Option<Fragment> {
    let n = trace.guest_n;
    assert!(t0 < trace.guest_t);
    let b: Vec<Vec<Node>> = (0..n as Node).map(|i| trace.representatives(i, t0).to_vec()).collect();
    let mut b_prime = Vec::with_capacity(n);
    // Occupancy per host at level t0: |P(j, t0)| — computed once.
    let mut occupancy = vec![0u32; trace.host_m];
    for bi in &b {
        for &q in bi {
            occupancy[q as usize] += 1;
        }
    }
    for i in 0..n as Node {
        let gens = trace.generators(i, t0);
        if gens.is_empty() {
            return None;
        }
        let bi = match choice {
            GeneratorChoice::First => gens[0],
            GeneratorChoice::LightestHost => *gens
                .iter()
                .min_by_key(
                    |&&q| {
                        if t0 == 0 {
                            trace.guest_n as u32
                        } else {
                            occupancy[q as usize]
                        }
                    },
                )
                .expect("nonempty"),
        };
        b_prime.push(bi);
    }
    // D_i = indices i' whose B_{i'} contains b_i. Build host → guests index.
    let mut by_host: Vec<Vec<Node>> = vec![Vec::new(); trace.host_m];
    if t0 == 0 {
        for row in by_host.iter_mut() {
            *row = (0..n as Node).collect();
        }
    } else {
        for (i, bi) in b.iter().enumerate() {
            for &q in bi {
                by_host[q as usize].push(i as Node);
            }
        }
    }
    let d = b_prime.iter().map(|&bi| by_host[bi as usize].clone()).collect();
    Some(Fragment { t0, b, b_prime, d })
}

impl Fragment {
    /// `Σ_i |B_i|` — bounded by `q·n·k` in the Main Lemma (property 2).
    pub fn total_b_size(&self) -> usize {
        self.b.iter().map(|v| v.len()).sum()
    }

    /// The multiset of `|D_i|` values (property 3 of the Main Lemma bounds
    /// how many of them may exceed `n/√m`).
    pub fn d_sizes(&self) -> Vec<usize> {
        self.d.iter().map(|v| v.len()).collect()
    }

    /// Number of `i` with `|D_i| ≤ bound` (Main Lemma property 3 wants at
    /// least `γ·n` of them with `bound = n/√m`).
    pub fn small_d_count(&self, bound: usize) -> usize {
        self.d.iter().filter(|v| v.len() <= bound).count()
    }

    /// `log₂` of the Lemma 3.3 multiplicity bound `∏ C(|D_i|, c/2)` for
    /// guest degree `c`: how many `c`-regular guests can share this fragment.
    pub fn log2_multiplicity(&self, c: usize) -> f64 {
        unet_topology::enumeration::log2_multiplicity(
            &self.d_sizes().iter().map(|&x| x as u64).collect::<Vec<_>>(),
            c as u64,
        )
    }

    /// Verify the structural facts a fragment of a *valid* simulation must
    /// satisfy (the core of Lemma 3.3):
    /// * `b_i ∈ B_i` (generators hold what they extend);
    /// * every guest neighbour `i'` of `i` lies in `D_i` — because `b_i`
    ///   generated `(P_i, t₀+1)` it held `(P_{i'}, t₀)`, so `b_i ∈ B_{i'}`.
    pub fn verify_against_guest(&self, guest: &Graph) -> Result<(), String> {
        let n = guest.n();
        if self.b.len() != n || self.b_prime.len() != n || self.d.len() != n {
            return Err("fragment arity mismatch".into());
        }
        for i in 0..n {
            if self.t0 > 0 && !self.b[i].contains(&self.b_prime[i]) {
                return Err(format!("b_{i} not in B_{i}"));
            }
            let di: FxHashSet<Node> = self.d[i].iter().copied().collect();
            if !di.contains(&(i as Node)) {
                return Err(format!("D_{i} misses i itself"));
            }
            for &nb in guest.neighbors(i as Node) {
                if !di.contains(&nb) {
                    return Err(format!("guest edge ({i}, {nb}) not captured by D_{i}"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::check;
    use crate::protocol::{Op, Pebble, ProtocolBuilder};
    use unet_topology::generators::{complete, ring};

    /// Guest ring(3) simulated for 2 steps on host K2 by host 0 alone.
    fn two_step_trace() -> (unet_topology::Graph, Trace) {
        let guest = ring(3);
        let host = complete(2);
        let mut b = ProtocolBuilder::new(3, 2, 2);
        for t in 1..=2u32 {
            for i in 0..3u32 {
                b.set_op(0, Op::Generate(Pebble::new(i, t)));
                b.end_step();
            }
        }
        let proto = b.finish();
        let trace = check(&guest, &host, &proto).expect("valid");
        (guest, trace)
    }

    #[test]
    fn fragment_at_t0_zero() {
        let (guest, trace) = two_step_trace();
        let frag = extract_fragment(&trace, 0, GeneratorChoice::First).unwrap();
        assert_eq!(frag.t0, 0);
        // B_i at t=0: all hosts.
        assert_eq!(frag.b[0], vec![0, 1]);
        // Generator of (i,1) is host 0.
        assert_eq!(frag.b_prime, vec![0, 0, 0]);
        // D_i: all guests are on host 0 at t=0.
        assert_eq!(frag.d[0], vec![0, 1, 2]);
        frag.verify_against_guest(&guest).unwrap();
        assert_eq!(frag.total_b_size(), 6);
    }

    #[test]
    fn fragment_at_t0_one() {
        let (guest, trace) = two_step_trace();
        let frag = extract_fragment(&trace, 1, GeneratorChoice::First).unwrap();
        // Only host 0 holds level-1 pebbles.
        assert_eq!(frag.b, vec![vec![0], vec![0], vec![0]]);
        assert_eq!(frag.d[1], vec![0, 1, 2]);
        frag.verify_against_guest(&guest).unwrap();
        assert_eq!(frag.small_d_count(2), 0);
        assert_eq!(frag.small_d_count(3), 3);
    }

    #[test]
    fn multiplicity_bound_counts_ring_candidates() {
        let (_, trace) = two_step_trace();
        let frag = extract_fragment(&trace, 1, GeneratorChoice::First).unwrap();
        // |D_i| = 3 for all i; for c = 2: ∏ C(3,1) = 27 candidates.
        let lg = frag.log2_multiplicity(2);
        assert!((lg - 27f64.log2()).abs() < 1e-9);
    }

    #[test]
    fn lightest_host_choice_valid() {
        let (guest, trace) = two_step_trace();
        let frag = extract_fragment(&trace, 1, GeneratorChoice::LightestHost).unwrap();
        frag.verify_against_guest(&guest).unwrap();
    }

    #[test]
    fn truncated_trace_yields_none() {
        // Build a valid 1-step protocol but query t0 = 1 (T = 2 required for
        // that) — emulate by building T = 2 protocol missing level 2... the
        // checker would reject it, so instead check t0 = 1 of a T = 2 trace
        // is fine and t0 must be < T.
        let (_, trace) = two_step_trace();
        assert!(extract_fragment(&trace, 1, GeneratorChoice::First).is_some());
    }
}
