//! E9 — dynamic redundancy vs static embedding for `m ≤ n`.
//!
//! Regenerates the flooding-vs-embedding comparison across host sizes: the
//! fully redundant simulator has inefficiency exactly `k = m`, the static
//! embedding `k ≈ Θ(log m)`-with-constants; the crossover and the widening
//! gap above it reproduce the paper's conclusion that dynamics cannot beat
//! the embedding for `m ≤ n`. Then times the protocol generation + checking.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use unet_bench::standard_guest;
use unet_core::flooding::flooding_protocol;
use unet_core::prelude::*;
use unet_pebble::check;
use unet_topology::generators::torus;

fn regenerate_table() {
    let n = 512;
    let steps = 2;
    let (guest, comp) = standard_guest(n, 0xE9);
    println!("\n=== E9: redundancy vs embedding (guest n = {n}) ===");
    println!(
        "{:>5} {:>12} {:>12} {:>14} {:>12}",
        "m", "k_embed", "k_flood(=m)", "s_embed", "s_flood(=n)"
    );
    for side in [2usize, 4, 8, 16] {
        let m = side * side;
        let host = torus(side, side);
        let router = presets::torus_xy(side, side);
        let run = Simulation::builder()
            .guest(&comp)
            .host(&host)
            .embedding(Embedding::block(n, m))
            .router(&router)
            .steps(steps)
            .seed(0xE9)
            .run()
            .expect("torus configuration is valid");
        verify_run(&comp, &host, &run, steps).expect("certifies");
        let flood = flooding_protocol(&comp, m, steps);
        check(&guest, &host, &flood).expect("flooding certifies");
        println!(
            "{m:>5} {:>12.1} {:>12.1} {:>14.1} {:>12.1}",
            run.inefficiency(),
            flood.inefficiency(),
            run.slowdown(),
            flood.slowdown()
        );
    }
    println!(
        "k_embed is ~flat-ish in m (log-ish), k_flood = m: redundancy loses for all but tiny m."
    );
}

fn bench(c: &mut Criterion) {
    regenerate_table();
    let (guest, comp) = standard_guest(256, 0xE9);
    let mut group = c.benchmark_group("e9_dynamic");
    group.sample_size(10);
    for side in [4usize, 8] {
        let m = side * side;
        let host = torus(side, side);
        group.bench_with_input(BenchmarkId::new("flooding+check", m), &m, |b, &m| {
            b.iter(|| {
                let proto = flooding_protocol(&comp, m, 2);
                check(&guest, &host, &proto).unwrap().host_steps
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
