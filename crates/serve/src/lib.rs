//! # unet-serve — simulation as a service
//!
//! Everything else in this workspace is one-shot: build the topology,
//! compile the route plan, run, exit. This crate is the long-lived
//! counterpart the ROADMAP's "serves heavy traffic" north star asks for — a
//! TCP server that keeps the expensive artifacts (compiled route plans,
//! metric aggregates) alive across requests:
//!
//! * [`protocol`] — the versioned newline-delimited JSON wire format
//!   (`unet-serve/1`): `simulate` / `analyze` / `metrics` requests,
//!   `result` / `error` / `overloaded` responses;
//! * [`queue`] — the bounded admission queue; a full queue produces a
//!   typed `overloaded` rejection, never unbounded buffering;
//! * [`server`] — acceptor + worker pool sharing one
//!   [`SharedPlanCache`](unet_core::SharedPlanCache) (repeated guest/host
//!   workloads skip route-plan compilation) and one metrics recorder;
//!   per-request deadlines ride the engine's phase-boundary cancellation;
//!   [`Server::drain`] answers everything in flight and flushes metrics;
//! * [`loadgen`] — a deterministic closed-loop load generator for capacity
//!   experiments (E19) and CI smoke tests;
//! * [`client`] — one-shot request helper behind `unet request`;
//! * [`signal`] — SIGTERM-to-flag plumbing for graceful drain.
//!
//! ```
//! use unet_serve::{Server, ServeConfig};
//! use unet_serve::client::request_line;
//! use unet_serve::protocol::{simulate_request_line, parse_response, Response, SimulateReq};
//!
//! let server = Server::start(ServeConfig::default()).expect("bind");
//! let req = simulate_request_line(&SimulateReq {
//!     guest: "ring:12".into(), host: "torus:2x2".into(),
//!     steps: 2, seed: 7, deadline_ms: None, id: Some(1),
//! });
//! let resp = request_line(&server.addr().to_string(), &req).expect("round trip");
//! assert!(matches!(parse_response(&resp), Ok(Response::Result(_))));
//! let report = server.drain();
//! assert_eq!(report.stats.completed, 1);
//! ```

#![deny(missing_docs)]

pub mod client;
pub mod loadgen;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod signal;

pub use loadgen::{LoadgenConfig, LoadgenReport};
pub use protocol::{Request, Response, PROTOCOL};
pub use server::{DrainReport, ServeConfig, Server, ServerStats};
