//! Equivalence tests for the redesigned engine: a parallel, route-plan-
//! cached run must be **bit-for-bit identical** to the sequential,
//! uncached run — same pebble `Protocol`, same `final_states` — on
//! healthy hosts through the [`Simulation`] builder and on crashing hosts
//! through [`DegradedSimulator::simulate_tuned`]. The suite also pins the
//! builder's error paths (the panics that became `SimError`).

use proptest::prelude::*;
use universal_networks::core::prelude::*;
use universal_networks::core::SimError;
use universal_networks::faults::{DegradedSimulator, DegradedTuning, FaultPlan};
use universal_networks::obs::NoopRecorder;
use universal_networks::pebble::check;
use universal_networks::routing::ShortestPath;
use universal_networks::topology::generators::{random_regular, torus};
use universal_networks::topology::util::seeded_rng;
use universal_networks::topology::Graph;

fn builder_run(
    comp: &GuestComputation,
    host: &Graph,
    steps: u32,
    seed: u64,
    threads: usize,
    cache: CachePolicy,
) -> SimulationRun {
    let router = presets::bfs();
    Simulation::builder()
        .guest(comp)
        .host(host)
        .embedding(Embedding::block(comp.graph.n(), host.n()))
        .router(&router)
        .steps(steps)
        .seed(seed)
        .threads(threads)
        .cache_policy(cache)
        .run()
        .expect("valid configuration runs")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Healthy engine: (threads = 4, cache on) ≡ (threads = 1, cache off)
    /// for random guests, hosts, and seeds — and both certify.
    #[test]
    fn parallel_cached_equals_sequential_uncached(
        seed in 0u64..500,
        guest_scale in 2usize..5,   // n = 16·scale
        host_side in 2usize..4,     // m = side²
        steps in 1u32..5,
    ) {
        let n = 16 * guest_scale;
        let mut rng = seeded_rng(seed);
        let guest = random_regular(n, 4, &mut rng);
        let host = torus(host_side, host_side);
        let comp = GuestComputation::random(guest.clone(), seed ^ 0x55);
        let base = builder_run(&comp, &host, steps, seed, 1, CachePolicy::Disabled);
        let tuned = builder_run(&comp, &host, steps, seed, 4, CachePolicy::Enabled);
        prop_assert_eq!(&tuned.protocol, &base.protocol);
        prop_assert_eq!(&tuned.final_states, &base.final_states);
        prop_assert_eq!((tuned.comm_steps, tuned.compute_steps), (base.comm_steps, base.compute_steps));
        check(&guest, &host, &base.protocol).expect("certifies");
        prop_assert_eq!(base.final_states, comp.run_final(steps));
    }

    /// Degraded engine under a 10% crash plan: `simulate_tuned` with
    /// (threads = 4, cache on) ≡ (threads = 1, cache off), fault story
    /// included, and the protocol still certifies.
    #[test]
    fn degraded_parallel_cached_equals_sequential_uncached(
        seed in 0u64..300,
        host_side in 3usize..5,
        steps in 2u32..6,
    ) {
        let n = 48;
        let mut rng = seeded_rng(seed);
        let guest = random_regular(n, 4, &mut rng);
        let host = torus(host_side, host_side);
        let comp = GuestComputation::random(guest.clone(), seed ^ 0x77);
        let sim = DegradedSimulator {
            embedding: Embedding::block(n, host.n()),
            plan: FaultPlan::crashes(&host, 0.10, 2, seed),
            selector: Some(ShortestPath),
        };
        let seq = sim
            .simulate_tuned(&comp, &host, steps,
                &DegradedTuning { threads: 1, cache: false },
                &mut seeded_rng(seed ^ 0xAB), &mut NoopRecorder)
            .expect("10% crashes leave survivors");
        let par = sim
            .simulate_tuned(&comp, &host, steps,
                &DegradedTuning { threads: 4, cache: true },
                &mut seeded_rng(seed ^ 0xAB), &mut NoopRecorder)
            .expect("same plan, same survivors");
        prop_assert_eq!(&par.run.protocol, &seq.run.protocol);
        prop_assert_eq!(&par.run.final_states, &seq.run.final_states);
        prop_assert_eq!(&par.fault_log, &seq.fault_log);
        prop_assert_eq!(
            (par.delivered, par.dropped, par.retried, par.replayed, par.remapped),
            (seq.delivered, seq.dropped, seq.retried, seq.replayed, seq.remapped)
        );
        check(&guest, &host, &seq.run.protocol).expect("degraded protocol certifies");
        prop_assert_eq!(seq.run.final_states, comp.run_final(steps));
    }
}

#[test]
fn builder_rejects_zero_steps_and_size_mismatches() {
    let guest = random_regular(32, 4, &mut seeded_rng(1));
    let host = torus(2, 2);
    let comp = GuestComputation::random(guest, 1);
    let router = presets::bfs();
    let base = || {
        Simulation::builder()
            .guest(&comp)
            .host(&host)
            .embedding(Embedding::block(32, 4))
            .router(&router)
    };
    assert!(matches!(base().steps(0).run(), Err(SimError::ZeroSteps)));
    let wrong_guest = base().embedding(Embedding::block(16, 4)).steps(1).run();
    assert!(matches!(wrong_guest, Err(SimError::GuestMismatch { embedding_n: 16, guest_n: 32 })));
    let wrong_host = base().embedding(Embedding::block(32, 8)).steps(1).run();
    assert!(matches!(wrong_host, Err(SimError::HostMismatch { embedding_m: 8, host_m: 4 })));
    assert!(matches!(base().run(), Err(SimError::MissingField("steps"))));
}

#[test]
fn builder_surfaces_router_validation() {
    use universal_networks::core::routers::OfflineBenesRouter;
    let guest = random_regular(16, 4, &mut seeded_rng(2));
    let host = torus(2, 2); // not a Beneš network
    let comp = GuestComputation::random(guest, 2);
    let router = OfflineBenesRouter { dim: 2 };
    let err = Simulation::builder()
        .guest(&comp)
        .host(&host)
        .embedding(Embedding::block(16, 4))
        .router(&router)
        .steps(2)
        .run()
        .unwrap_err();
    match err {
        SimError::Router { router, reason } => {
            assert_eq!(router, "offline-benes-waksman");
            assert!(reason.contains("benes_network(2)"), "{reason}");
        }
        other => panic!("expected router validation error, got {other}"),
    }
}
