//! The Theorem 2.1 universal simulation engine.
//!
//! Simulates `T` steps of an arbitrary guest on an arbitrary host: guests are
//! statically embedded (`f : [n] → [m]`, load `≤ ⌈n/m⌉`); each guest step is
//! (a) a **communication phase** — the guest's cross-host edges induce an
//! `O(n/m)–O(n/m)` routing problem, solved by a pluggable [`Router`] — and
//! (b) a **computation phase** — each host generates its guests' next
//! configurations.
//!
//! The engine emits a full pebble-game [`Protocol`] (so the Section 3.1
//! checker can certify the run) plus the host-computed final states (so the
//! simulation can be verified bit-for-bit against direct execution).
//!
//! Two execution optimizations live here, both **bit-for-bit invisible** in
//! the emitted protocol and final states:
//!
//! * **Route-plan cache** — for a static embedding the induced routing
//!   problem is identical at every guest step `gt > 1`, so the pair set and
//!   the router's matching decomposition ([`unet_routing::plan::RoutePlan`])
//!   are computed once and replayed with fresh pebble payloads each step.
//! * **Parallel phases** — pair extraction shards by guest range and the
//!   host-side state computation shards by node range, both on
//!   [`unet_topology::par`] with order-preserving merges.
//!
//! The public front door is [`crate::sim::Simulation`]. (The legacy
//! `EmbeddingSimulator` wrappers, deprecated since the builder landed, are
//! gone; the builder's fixed per-run route seed subsumes their threaded-RNG
//! mode for every deterministic router and makes randomized routers
//! cacheable besides.)

use crate::cache::{plan_fingerprint, Acquire, LeadGuard, SharedPlanCache};
use crate::cancel::CancelToken;
use crate::embedding::Embedding;
use crate::error::SimError;
use crate::guest::{transition, GuestComputation};
use crate::routers::Router;
use unet_obs::{edge_key, Recorder};
use unet_pebble::protocol::{Op, Pebble, Protocol, ProtocolBuilder};
use unet_routing::packet::Transfer;
use unet_routing::plan::{extract_plan, PlanCache, RoutePlan};
use unet_routing::problem::RoutingProblem;
use unet_topology::par::par_chunks;
use unet_topology::util::{seeded_rng, FxHashSet};
use unet_topology::{Graph, Node};

/// Result of a universal simulation run.
#[derive(Debug, Clone)]
pub struct SimulationRun {
    /// The emitted pebble protocol (feed to [`unet_pebble::check`](fn@unet_pebble::check)).
    pub protocol: Protocol,
    /// Host-computed final guest states (compare against
    /// [`GuestComputation::run_final`]).
    pub final_states: Vec<u64>,
    /// Host steps spent in communication phases.
    pub comm_steps: usize,
    /// Host steps spent in computation phases.
    pub compute_steps: usize,
}

impl SimulationRun {
    /// Measured slowdown `T'/T`.
    pub fn slowdown(&self) -> f64 {
        self.protocol.slowdown()
    }

    /// Measured inefficiency `k = s·m/n`.
    pub fn inefficiency(&self) -> f64 {
        self.protocol.inefficiency()
    }
}

/// Execution knobs threaded through the engine core (see
/// [`crate::sim::SimulationBuilder`] for the public surface).
///
/// `route_seed` fixes the router's randomness per run: every communication
/// phase sees an identically seeded generator, the schedule becomes
/// step-invariant, and the route-plan cache is pure memoization (cached and
/// uncached runs are bit-for-bit identical even for randomized routers).
#[derive(Debug, Clone, Copy)]
pub(crate) struct EngineConfig<'e> {
    pub threads: usize,
    pub cache: bool,
    /// Seed for the per-phase route RNG (drawn once by the builder).
    pub route_seed: u64,
    /// Cross-run plan cache to pre-seed from / publish to (serve workers).
    pub shared: Option<&'e SharedPlanCache>,
    /// Cooperative cancellation, checked at phase boundaries.
    pub cancel: Option<&'e CancelToken>,
}

/// The step-invariant skeleton of one communication phase: payload sources
/// (guest per packet), problem size, and the replayable transfer rounds.
#[derive(Debug, Clone, Default)]
pub(crate) struct CachedComm {
    guests: Vec<Node>,
    pair_count: usize,
    plan: RoutePlan,
}

/// Build the induced `h–h` routing problem: one packet per
/// `(guest u, remote host of a neighbour of u)`, in ascending guest order.
///
/// Sharded by guest range. The dedup key `(u, fv)` involves only the shard's
/// own `u`, so shard-local `seen` sets plus an in-order concatenation yield
/// exactly the sequential pair list.
fn induced_pairs(
    comp: &GuestComputation,
    f: &[Node],
    threads: usize,
) -> (Vec<(Node, Node)>, Vec<Node>) {
    let n = comp.n();
    let found: Vec<((Node, Node), Node)> = par_chunks(n, threads, |range| {
        let mut seen: FxHashSet<(Node, Node)> = FxHashSet::default();
        let mut out = Vec::new();
        for u in range {
            let u = u as Node;
            let fu = f[u as usize];
            for &v in comp.graph.neighbors(u) {
                let fv = f[v as usize];
                if fu != fv && seen.insert((u, fv)) {
                    out.push(((fu, fv), u));
                }
            }
        }
        out
    });
    let mut pairs = Vec::with_capacity(found.len());
    let mut guests = Vec::with_capacity(found.len());
    for (pair, u) in found {
        pairs.push(pair);
        guests.push(u);
    }
    (pairs, guests)
}

/// Host-side state computation, sharded by node range (each node reads only
/// `prev_states`, so the parallel result equals the sequential one exactly).
///
/// Public so degraded-mode simulators (`unet-faults`) can share the exact
/// transition loop (and its parallel/sequential equivalence guarantee).
pub fn advance_states(comp: &GuestComputation, prev_states: &[u64], threads: usize) -> Vec<u64> {
    par_chunks(comp.n(), threads, |range| {
        let mut out = Vec::with_capacity(range.len());
        let mut nb_buf: Vec<u64> = Vec::new();
        for i in range {
            nb_buf.clear();
            nb_buf.extend(comp.graph.neighbors(i as Node).iter().map(|&j| prev_states[j as usize]));
            out.push(transition(prev_states[i], &nb_buf));
        }
        out
    })
}

/// The engine core behind [`crate::sim::SimulationBuilder::run`].
pub(crate) fn run_engine<REC: Recorder>(
    embedding: &Embedding,
    router: &dyn Router,
    comp: &GuestComputation,
    host: &Graph,
    steps: u32,
    cfg: &EngineConfig<'_>,
    rec: &mut REC,
) -> Result<SimulationRun, SimError> {
    let n = comp.n();
    let m = host.n();
    if steps == 0 {
        return Err(SimError::ZeroSteps);
    }
    if m == 0 {
        return Err(SimError::EmptyHost);
    }
    if embedding.n() != n {
        return Err(SimError::GuestMismatch { embedding_n: embedding.n(), guest_n: n });
    }
    if embedding.m != m {
        return Err(SimError::HostMismatch { embedding_m: embedding.m, host_m: m });
    }
    router.validate(host).map_err(|reason| SimError::Router { router: router.name(), reason })?;

    let f = &embedding.f;
    let guests_by_host = embedding.guests_by_host();
    let load = embedding.load();

    let mut builder = ProtocolBuilder::new(n, steps, m);
    let mut comm_steps = 0usize;
    let mut compute_steps = 0usize;
    // The core engine never changes topology mid-run, so the cache epoch is
    // constant; degraded-mode simulators key their caches on the live
    // `FaultyView::epoch` instead.
    let mut cache: PlanCache<CachedComm> = PlanCache::new();

    // Cross-run sharing: pre-seed the per-run cache from the process-wide
    // one when the workload fingerprint matches. A miss takes the
    // single-flight build lease: concurrent runs of the same workload block
    // on this run's compile instead of duplicating it, and get woken the
    // moment `publish` fires below (right after the gt = 2 compile, not at
    // the end of the run). If this run errors or is cancelled before
    // compiling, dropping the lease promotes a blocked follower to leader.
    let mut lease: Option<LeadGuard<'_>> = None;
    if cfg.cache {
        if let Some(shared) = cfg.shared {
            let key = plan_fingerprint(&comp.graph, host, embedding, router.name(), cfg.route_seed);
            // Time the acquire: an instant hit or a fresh lease is ~0, a
            // single-flight follower blocked on another run's compile shows
            // its real wait here (`singleflight_wait` in request spans).
            let acquire_started = std::time::Instant::now();
            let acquired = shared.acquire(key, cfg.cancel)?;
            rec.histogram("sim.plan.acquire_us", acquire_started.elapsed().as_micros() as u64);
            match acquired {
                Acquire::Hit(entry) => {
                    rec.counter("sim.cache.shared.hits", 1);
                    cache.store(0, entry);
                }
                Acquire::Lead(guard) => {
                    rec.counter("sim.cache.shared.misses", 1);
                    lease = Some(guard);
                }
            }
        }
    }

    let mut prev_states: Vec<u64> = comp.init.clone();
    // Global communication-round index across the whole run: the time
    // axis of the `sim.edge_util` congestion series. Cached phases replay
    // the same plan over fresh rounds, so they are sampled too — the
    // telemetry reflects actual edge traffic, not just route() calls.
    let mut comm_round = 0u64;

    for gt in 1..=steps {
        // Cooperative cancellation is checked at phase boundaries only:
        // phases are the engine's units of progress, and a branch inside
        // the routing/compute loops would tax uncancellable runs too.
        if cfg.cancel.is_some_and(CancelToken::is_cancelled) {
            return Err(SimError::Cancelled);
        }
        // ---- Communication phase -------------------------------------
        // One packet per (guest u, remote host of a neighbour of u).
        // Level-0 pebbles are initial and held by every host, so the
        // first guest step needs no communication at all.
        rec.span_start("sim.comm");
        if gt > 1 {
            let hit = cfg.cache && cache.lookup(0, |_| true).is_some();
            if hit {
                let c = cache.peek().expect("hit implies entry");
                rec.histogram("sim.routing_problem_size", c.pair_count as u64);
                let payloads: Vec<Pebble> =
                    c.guests.iter().map(|&u| Pebble::new(u, gt - 1)).collect();
                for round in &c.plan.rounds {
                    for &(from, to, _) in round {
                        rec.sample("sim.edge_util", comm_round, edge_key(from, to), 1);
                    }
                    comm_round += 1;
                }
                comm_steps += replay_plan(&mut builder, &c.plan, &payloads);
            } else {
                let build_started = std::time::Instant::now();
                let (pairs, guests) = induced_pairs(comp, f, cfg.threads);
                rec.histogram("sim.routing_problem_size", pairs.len() as u64);
                let pair_count = pairs.len();
                let plan = if pairs.is_empty() {
                    RoutePlan::default()
                } else {
                    let prob = RoutingProblem::new(m, pairs);
                    let out = router.route_recorded(
                        host,
                        &prob,
                        &mut seeded_rng(cfg.route_seed),
                        &mut *rec,
                    );
                    extract_plan(&out.transfers)
                };
                // Pair extraction through route + plan extraction is the
                // plan build (`plan_build` in request spans).
                rec.histogram("sim.plan.build_us", build_started.elapsed().as_micros() as u64);
                let payloads: Vec<Pebble> =
                    guests.iter().map(|&u| Pebble::new(u, gt - 1)).collect();
                for round in &plan.rounds {
                    for &(from, to, _) in round {
                        rec.sample("sim.edge_util", comm_round, edge_key(from, to), 1);
                    }
                    comm_round += 1;
                }
                comm_steps += replay_plan(&mut builder, &plan, &payloads);
                if cfg.cache {
                    let entry = CachedComm { guests, pair_count, plan };
                    // Publish to the shared cache the moment the plan
                    // exists: single-flight followers wake here and replay
                    // it while this run is still simulating.
                    if let Some(mut guard) = lease.take() {
                        guard.publish(entry.clone());
                    }
                    cache.store(0, entry);
                }
            }
        } else {
            rec.histogram("sim.routing_problem_size", 0);
        }
        rec.span_end("sim.comm");
        if cfg.cancel.is_some_and(CancelToken::is_cancelled) {
            return Err(SimError::Cancelled);
        }
        // ---- Computation phase ---------------------------------------
        rec.span_start("sim.compute");
        for round in 0..load {
            for (q, guests) in guests_by_host.iter().enumerate() {
                if let Some(&v) = guests.get(round) {
                    builder.set_op(q as Node, Op::Generate(Pebble::new(v, gt)));
                }
            }
            builder.end_step();
            compute_steps += 1;
        }
        // ---- Host-side state computation -----------------------------
        // (data availability is certified separately by the pebble
        // checker; values are copies, so computing from the global table
        // is equivalent to computing from the delivered copies)
        prev_states = advance_states(comp, &prev_states, cfg.threads);
        rec.span_end("sim.compute");
    }
    rec.counter("sim.guest_steps", steps as u64);
    rec.counter("sim.comm_steps", comm_steps as u64);
    rec.counter("sim.compute_steps", compute_steps as u64);
    rec.counter("sim.cache.hits", cache.hits());
    rec.counter("sim.cache.misses", cache.misses());
    rec.gauge("sim.load", load as f64);
    rec.gauge("sim.par.threads", cfg.threads as f64);

    Ok(SimulationRun {
        protocol: builder.finish(),
        final_states: prev_states,
        comm_steps,
        compute_steps,
    })
}

/// Replay an extracted [`RoutePlan`] into pebble protocol steps with the
/// given payload table (`payloads[packet_id]`). Returns the number of pebble
/// steps emitted (`plan.rounds.len()`).
pub fn replay_plan(builder: &mut ProtocolBuilder, plan: &RoutePlan, payloads: &[Pebble]) -> usize {
    for round in &plan.rounds {
        for &(from, to, pid) in round {
            builder.transfer(from, to, payloads[pid as usize]);
        }
        builder.end_step();
    }
    plan.rounds.len()
}

/// Convert an engine transfer schedule into pebble send/receive steps.
///
/// The engine's port model allows a node to send *and* receive in the same
/// synchronous step; the pebble game allows only one operation per processor
/// per step. Each engine step's transfers form a multigraph of maximum
/// degree 2 (≤ 1 out, ≤ 1 in per node), so a greedy matching decomposition
/// needs at most 3 pebble steps per engine step (Vizing/Shannon bound for
/// Δ = 2). Self-transfers (lazy path segments) are dropped — custody already
/// covers them.
///
/// Since the route-plan cache landed this is literally
/// [`unet_routing::plan::extract_plan`] followed by [`replay_plan`]; the
/// decomposition is unchanged, so output is byte-identical to the historical
/// inline loop.
///
/// Returns the number of pebble steps emitted.
///
/// Public so that degraded-mode simulators (`unet-faults`) can reuse the
/// exact decomposition when converting fault-aware routing runs into
/// certified pebble steps.
pub fn emit_transfers(
    builder: &mut ProtocolBuilder,
    transfers: &[Transfer],
    payloads: &[Pebble],
) -> usize {
    replay_plan(builder, &extract_plan(transfers), payloads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routers::presets;
    use crate::sim::Simulation;
    use unet_pebble::check;
    use unet_topology::generators::{mesh, random_regular, ring, torus};
    use unet_topology::util::seeded_rng;

    fn run(
        comp: &GuestComputation,
        host: &Graph,
        embedding: Embedding,
        router: &dyn Router,
        steps: u32,
        seed: u64,
    ) -> SimulationRun {
        Simulation::builder()
            .guest(comp)
            .host(host)
            .embedding(embedding)
            .router(router)
            .steps(steps)
            .seed(seed)
            .run()
            .expect("valid configuration")
    }

    /// End-to-end: guest ring(12) on torus(2,2) host via BFS routing;
    /// protocol must check and states must match direct execution.
    #[test]
    fn ring_on_tiny_torus_end_to_end() {
        let guest = ring(12);
        let host = torus(2, 2);
        let comp = GuestComputation::random(guest.clone(), 99);
        let router = presets::bfs();
        let run = run(&comp, &host, Embedding::block(12, 4), &router, 3, 1);
        // Pebble-game certification.
        let trace = check(&guest, &host, &run.protocol).expect("protocol must verify");
        assert_eq!(trace.host_steps, run.protocol.host_steps());
        // Bit-for-bit correctness.
        assert_eq!(run.final_states, comp.run_final(3));
        // Slowdown ≥ load.
        assert!(run.slowdown() >= 3.0);
        assert_eq!(run.comm_steps + run.compute_steps, run.protocol.host_steps());
    }

    #[test]
    fn random_regular_guest_on_mesh() {
        let guest = random_regular(24, 4, &mut seeded_rng(7));
        let host = mesh(3, 3);
        let comp = GuestComputation::random(guest.clone(), 5);
        let router = presets::mesh_xy(3, 3);
        let run = run(&comp, &host, Embedding::block(24, 9), &router, 2, 2);
        check(&guest, &host, &run.protocol).expect("verify");
        assert_eq!(run.final_states, comp.run_final(2));
    }

    #[test]
    fn injective_embedding_when_m_exceeds_n() {
        // m > n: every guest on its own host; slowdown dominated by routing.
        let guest = ring(8);
        let host = torus(4, 4);
        let comp = GuestComputation::random(guest.clone(), 1);
        let router = presets::torus_xy(4, 4);
        let run = run(&comp, &host, Embedding::block(8, 16), &router, 2, 3);
        check(&guest, &host, &run.protocol).expect("verify");
        assert_eq!(run.final_states, comp.run_final(2));
    }

    #[test]
    fn guest_equal_host_identity_embedding() {
        // Simulating a torus on itself: communication only with neighbours'
        // hosts; still must verify.
        let guest = torus(3, 3);
        let host = torus(3, 3);
        let comp = GuestComputation::random(guest.clone(), 2);
        let router = presets::bfs();
        let run = run(&comp, &host, Embedding::block(9, 9), &router, 2, 4);
        check(&guest, &host, &run.protocol).expect("verify");
        assert_eq!(run.final_states, comp.run_final(2));
    }

    #[test]
    fn random_embedding_still_correct() {
        let guest = ring(16);
        let host = torus(2, 2);
        let comp = GuestComputation::random(guest.clone(), 3);
        let router = presets::bfs();
        let run = run(&comp, &host, Embedding::random(16, 4, &mut seeded_rng(5)), &router, 2, 6);
        check(&guest, &host, &run.protocol).expect("verify");
        assert_eq!(run.final_states, comp.run_final(2));
    }

    #[test]
    fn recorded_simulation_matches_and_nests() {
        use unet_obs::InMemoryRecorder;
        let guest = ring(12);
        let host = torus(2, 2);
        let comp = GuestComputation::random(guest.clone(), 99);
        let router = presets::bfs();
        let plain = run(&comp, &host, Embedding::block(12, 4), &router, 3, 1);
        let mut rec = InMemoryRecorder::new();
        let recorded = Simulation::builder()
            .guest(&comp)
            .host(&host)
            .embedding(Embedding::block(12, 4))
            .router(&router)
            .steps(3)
            .seed(1)
            .recorder(&mut rec)
            .run()
            .expect("recorded run");
        // Instrumentation must not perturb the run (same route seed).
        assert_eq!(plain.final_states, recorded.final_states);
        assert_eq!(plain.comm_steps, recorded.comm_steps);
        assert_eq!(plain.compute_steps, recorded.compute_steps);
        assert_eq!(plain.protocol.host_steps(), recorded.protocol.host_steps());
        // Spans balanced; phase totals present for both phases.
        assert!(rec.open_spans().is_empty());
        let totals: Vec<_> = rec.span_totals().collect();
        assert!(totals.iter().any(|&(n, ns, _)| n == "sim.comm" && ns > 0));
        assert!(totals.iter().any(|&(n, ..)| n == "sim.compute"));
        // Router metrics nested under the simulation via the dyn boundary.
        assert!(totals.iter().any(|&(n, ..)| n == "route"));
        assert!(rec.counter_value("route.steps") > 0);
        // Run totals agree with the result.
        assert_eq!(rec.counter_value("sim.guest_steps"), 3);
        assert_eq!(rec.counter_value("sim.comm_steps"), recorded.comm_steps as u64);
        assert_eq!(rec.counter_value("sim.compute_steps"), recorded.compute_steps as u64);
        // One routing-problem-size sample per guest step.
        assert_eq!(rec.histogram_data("sim.routing_problem_size").unwrap().count, 3);
        // Per-run cache: gt=2 compiles, gt=3 replays.
        assert_eq!(rec.counter_value("sim.cache.hits"), 1);
        assert_eq!(rec.counter_value("sim.cache.misses"), 1);
    }

    #[test]
    fn simulation_run_carries_no_instrumentation_state() {
        // The zero-cost claim in struct form: a run is exactly its four
        // payload fields; recording state lives in the Recorder, never here.
        use std::mem::size_of;
        assert_eq!(
            size_of::<SimulationRun>(),
            size_of::<Protocol>() + size_of::<Vec<u64>>() + 2 * size_of::<usize>()
        );
    }

    #[test]
    fn emit_transfers_equals_extract_then_replay() {
        // The refactor contract: the one-shot path and the extracted-plan
        // path must build identical protocol segments.
        let transfers = vec![
            Transfer { step: 0, from: 0, to: 1, packet_id: 0 },
            Transfer { step: 0, from: 1, to: 2, packet_id: 1 },
            Transfer { step: 1, from: 2, to: 2, packet_id: 0 },
            Transfer { step: 1, from: 2, to: 3, packet_id: 1 },
        ];
        let payloads = vec![Pebble::new(4, 1), Pebble::new(5, 1)];
        let mut b1 = ProtocolBuilder::new(8, 1, 4);
        let s1 = emit_transfers(&mut b1, &transfers, &payloads);
        let plan = extract_plan(&transfers);
        let mut b2 = ProtocolBuilder::new(8, 1, 4);
        let s2 = replay_plan(&mut b2, &plan, &payloads);
        assert_eq!(s1, s2);
        assert_eq!(s1, plan.pebble_steps());
        // Close both protocols identically and compare the emitted steps.
        b1.end_step();
        b2.end_step();
        assert_eq!(b1.finish().steps, b2.finish().steps);
    }
}
